(* Versioned binary serialization for IR modules and resolved IRDL dialect
   specs (ROADMAP "binary bytecode + dialect distribution").

   A bytecode buffer is a sequence of self-delimiting documents:

     document := magic version:uvarint kind:u8 payload_len:uvarint payload

   [magic] is 8 bytes ("\xC9IRDLBC\x00": the lead byte is an invalid UTF-8
   start so no textual IR can collide), [kind] is 0 for an IR module and 1
   for a pack of dialect definitions. Because every document carries its
   payload length, documents concatenate freely — the binary analog of
   `// -----` chunks — and a reader can skip a document it cannot decode.

   A module payload is

     strtab pool total_values:uvarint op_index ops

   where [strtab] and [pool] are deduplicated tables (strings; types and
   attributes in one table, children referencing earlier entries only) that
   intern directly on load through the {!Attr} smart constructors, and
   [op_index] lists the byte length of every top-level op so a streaming
   reader can skip ops — regions included — without decoding them.

   Value cross-references are explicit indices assigned by the writer at
   first encounter (use or definition), which keeps the writer single-pass
   and incremental: ops can be pushed one at a time (streaming emit) and a
   forward-referencing use simply allocates the index early. The reader
   mirrors the textual parser: a use of a not-yet-defined index creates a
   [Forward_ref] placeholder patched in place at definition, preserving use
   identity.

   The reader is fail-soft by construction: every read is bounds-checked
   against the enclosing document, counts are sanity-checked against the
   bytes that remain, and all errors surface as located diagnostics
   ([Diag.Error_exn] / an engine emit), never as a crash. *)

open Irdl_support
module Graph = Irdl_ir.Graph
module Attr = Irdl_ir.Attr
module Context = Irdl_ir.Context
module Resolve = Irdl_core.Resolve
module Ast = Irdl_core.Ast
module C = Irdl_core.Constraint_expr

let magic = "\xc9IRDLBC\x00"
let magic_len = String.length magic
let version = 1

type kind = Module_doc | Dialect_doc

let kind_code = function Module_doc -> 0 | Dialect_doc -> 1

let sniff s =
  String.length s >= magic_len && String.sub s 0 magic_len = magic

(* ------------------------------------------------------------------ *)
(* Varint codecs                                                      *)
(* ------------------------------------------------------------------ *)

let add_uv buf n =
  if n < 0 then invalid_arg "Bytecode.add_uv: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag (i : int64) =
  Int64.logxor (Int64.shift_left i 1) (Int64.shift_right i 63)

let unzigzag (u : int64) =
  Int64.logxor (Int64.shift_right_logical u 1) (Int64.neg (Int64.logand u 1L))

let add_v64 buf (i : int64) =
  let rec go u =
    if Int64.unsigned_compare u 0x80L < 0 then
      Buffer.add_char buf (Char.chr (Int64.to_int u))
    else begin
      Buffer.add_char buf
        (Char.chr (0x80 lor (Int64.to_int (Int64.logand u 0x7fL))));
      go (Int64.shift_right_logical u 7)
    end
  in
  go (zigzag i)

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_strings : (string, int) Hashtbl.t;
  w_strtab : Buffer.t;
  mutable w_n_strings : int;
  (* One pool for types and attributes; the per-kind ref tables are keyed
     on the interner's dense ids, so dedup is O(1) per node. *)
  w_pool : Buffer.t;
  w_ty_refs : (int, int) Hashtbl.t;
  w_attr_refs : (int, int) Hashtbl.t;
  mutable w_n_pool : int;
  (* Value id -> bytecode value index, assigned at first encounter. *)
  w_vals : (int, int) Hashtbl.t;
  mutable w_n_vals : int;
  mutable w_undefined : int;
  w_index : Buffer.t;
  w_ops : Buffer.t;
  mutable w_n_ops : int;
}

let create_writer () =
  {
    w_strings = Hashtbl.create 64;
    w_strtab = Buffer.create 256;
    w_n_strings = 0;
    w_pool = Buffer.create 256;
    w_ty_refs = Hashtbl.create 64;
    w_attr_refs = Hashtbl.create 64;
    w_n_pool = 0;
    w_vals = Hashtbl.create 64;
    w_n_vals = 0;
    w_undefined = 0;
    w_index = Buffer.create 64;
    w_ops = Buffer.create 1024;
    w_n_ops = 0;
  }

let str_ref w s =
  match Hashtbl.find_opt w.w_strings s with
  | Some i -> i
  | None ->
      let i = w.w_n_strings in
      w.w_n_strings <- i + 1;
      Hashtbl.add w.w_strings s i;
      add_uv w.w_strtab (String.length s);
      Buffer.add_string w.w_strtab s;
      i

let signedness_code = function
  | Attr.Signless -> 0
  | Attr.Signed -> 1
  | Attr.Unsigned -> 2

let float_kind_code = function
  | Attr.BF16 -> 0
  | Attr.F16 -> 1
  | Attr.F32 -> 2
  | Attr.F64 -> 3

(* Pool entry tags. Types are 0x01.., attributes 0x20..; children always
   reference strictly earlier entries, so emission is post-order. *)
let rec ty_ref w ty =
  let ty = Attr.intern_ty ty in
  match Hashtbl.find_opt w.w_ty_refs (Attr.id_ty ty) with
  | Some i -> i
  | None ->
      let b = Buffer.create 16 in
      (match ty with
      | Attr.Integer { width; signedness } ->
          Buffer.add_char b '\x01';
          add_uv b width;
          Buffer.add_char b (Char.chr (signedness_code signedness))
      | Attr.Float k ->
          Buffer.add_char b '\x02';
          Buffer.add_char b (Char.chr (float_kind_code k))
      | Attr.Index -> Buffer.add_char b '\x03'
      | Attr.None_ty -> Buffer.add_char b '\x04'
      | Attr.Function { inputs; outputs } ->
          let ins = List.map (ty_ref w) inputs in
          let outs = List.map (ty_ref w) outputs in
          Buffer.add_char b '\x05';
          add_uv b (List.length ins);
          List.iter (add_uv b) ins;
          add_uv b (List.length outs);
          List.iter (add_uv b) outs
      | Attr.Tuple tys ->
          let refs = List.map (ty_ref w) tys in
          Buffer.add_char b '\x06';
          add_uv b (List.length refs);
          List.iter (add_uv b) refs
      | Attr.Dynamic { dialect; name; params } ->
          let refs = List.map (attr_ref w) params in
          Buffer.add_char b '\x07';
          add_uv b (str_ref w dialect);
          add_uv b (str_ref w name);
          add_uv b (List.length refs);
          List.iter (add_uv b) refs);
      let i = w.w_n_pool in
      w.w_n_pool <- i + 1;
      Hashtbl.add w.w_ty_refs (Attr.id_ty ty) i;
      Buffer.add_buffer w.w_pool b;
      i

and attr_ref w a =
  let a = Attr.intern a in
  match Hashtbl.find_opt w.w_attr_refs (Attr.id a) with
  | Some i -> i
  | None ->
      let b = Buffer.create 16 in
      (match a with
      | Attr.Unit -> Buffer.add_char b '\x20'
      | Attr.Bool v ->
          Buffer.add_char b '\x21';
          Buffer.add_char b (if v then '\x01' else '\x00')
      | Attr.Int { value; ty } ->
          let t = ty_ref w ty in
          Buffer.add_char b '\x22';
          add_v64 b value;
          add_uv b t
      | Attr.Float_attr { value; ty } ->
          let t = ty_ref w ty in
          Buffer.add_char b '\x23';
          add_v64 b (Int64.bits_of_float value);
          add_uv b t
      | Attr.String s ->
          Buffer.add_char b '\x24';
          add_uv b (str_ref w s)
      | Attr.Array elts ->
          let refs = List.map (attr_ref w) elts in
          Buffer.add_char b '\x25';
          add_uv b (List.length refs);
          List.iter (add_uv b) refs
      | Attr.Dict entries ->
          let refs =
            List.map (fun (k, v) -> (str_ref w k, attr_ref w v)) entries
          in
          Buffer.add_char b '\x26';
          add_uv b (List.length refs);
          List.iter
            (fun (k, v) ->
              add_uv b k;
              add_uv b v)
            refs
      | Attr.Type ty ->
          let t = ty_ref w ty in
          Buffer.add_char b '\x27';
          add_uv b t
      | Attr.Enum { dialect; enum; case } ->
          Buffer.add_char b '\x28';
          add_uv b (str_ref w dialect);
          add_uv b (str_ref w enum);
          add_uv b (str_ref w case)
      | Attr.Symbol s ->
          Buffer.add_char b '\x29';
          add_uv b (str_ref w s)
      | Attr.Location { file; line; col } ->
          Buffer.add_char b '\x2a';
          add_uv b (str_ref w file);
          add_uv b line;
          add_uv b col
      | Attr.Type_id s ->
          Buffer.add_char b '\x2b';
          add_uv b (str_ref w s)
      | Attr.Opaque { tag; repr } ->
          Buffer.add_char b '\x2c';
          add_uv b (str_ref w tag);
          add_uv b (str_ref w repr)
      | Attr.Dyn_attr { dialect; name; params } ->
          let refs = List.map (attr_ref w) params in
          Buffer.add_char b '\x2d';
          add_uv b (str_ref w dialect);
          add_uv b (str_ref w name);
          add_uv b (List.length refs);
          List.iter (add_uv b) refs);
      let i = w.w_n_pool in
      w.w_n_pool <- i + 1;
      Hashtbl.add w.w_attr_refs (Attr.id a) i;
      Buffer.add_buffer w.w_pool b;
      i

let add_loc w buf (loc : Loc.t) =
  if Loc.is_unknown loc then begin
    add_uv buf (str_ref w "");
    add_uv buf 0;
    add_uv buf 0
  end
  else begin
    add_uv buf (str_ref w loc.start_pos.file);
    add_uv buf loc.start_pos.line;
    add_uv buf loc.start_pos.col
  end

(* The index of a value used as an operand: allocated on first sight; the
   writer tracks how many allocated indices still await their defining op. *)
let value_use w (v : Graph.value) =
  match Hashtbl.find_opt w.w_vals v.v_id with
  | Some i -> i
  | None ->
      let i = w.w_n_vals in
      w.w_n_vals <- i + 1;
      w.w_undefined <- w.w_undefined + 1;
      Hashtbl.add w.w_vals v.v_id i;
      i

let value_def w (v : Graph.value) =
  match Hashtbl.find_opt w.w_vals v.v_id with
  | Some i ->
      (* Allocated by an earlier use: this is the awaited definition. *)
      w.w_undefined <- w.w_undefined - 1;
      i
  | None ->
      let i = w.w_n_vals in
      w.w_n_vals <- i + 1;
      Hashtbl.add w.w_vals v.v_id i;
      i

let rec encode_op w buf ~blocks (op : Graph.op) =
  add_uv buf (str_ref w op.op_name);
  add_loc w buf op.op_loc;
  add_uv buf (Array.length op.op_operands);
  Array.iter (fun (u : Graph.use) -> add_uv buf (value_use w u.u_value))
    op.op_operands;
  add_uv buf (Array.length op.op_results);
  Array.iter
    (fun (r : Graph.value) ->
      add_uv buf (ty_ref w r.v_ty);
      add_uv buf (value_def w r))
    op.op_results;
  add_uv buf (List.length op.attrs);
  List.iter
    (fun (name, a) ->
      add_uv buf (str_ref w name);
      add_uv buf (attr_ref w a))
    op.attrs;
  add_uv buf (List.length op.successors);
  List.iter
    (fun (b : Graph.block) ->
      match Hashtbl.find_opt blocks b.blk_id with
      | Some i -> add_uv buf i
      | None ->
          Diag.raise_error ~loc:op.op_loc
            "bytecode: successor of %S is not a block of the enclosing \
             region"
            op.op_name)
    op.successors;
  add_uv buf (List.length op.regions);
  List.iter (encode_region w buf) op.regions

and encode_region w buf (r : Graph.region) =
  let rbuf = Buffer.create 64 in
  let blks = Graph.Region.blocks r in
  let scope = Hashtbl.create 8 in
  List.iteri (fun i (b : Graph.block) -> Hashtbl.add scope b.blk_id i) blks;
  add_uv rbuf (List.length blks);
  (* Signature pass: argument types and value indices for every block, so
     branch targets and cross-block uses resolve before any body decodes. *)
  List.iter
    (fun (b : Graph.block) ->
      add_uv rbuf (Array.length b.blk_args);
      Array.iter
        (fun (a : Graph.value) ->
          add_uv rbuf (ty_ref w a.v_ty);
          add_uv rbuf (value_def w a))
        b.blk_args)
    blks;
  List.iter
    (fun (b : Graph.block) ->
      add_uv rbuf (Graph.Block.num_ops b);
      Graph.Block.iter_ops b ~f:(fun op -> encode_op w rbuf ~blocks:scope op))
    blks;
  add_uv buf (Buffer.length rbuf);
  Buffer.add_buffer buf rbuf

module Write = struct
  type t = writer

  let create () = create_writer ()
  let no_blocks : (int, int) Hashtbl.t = Hashtbl.create 1

  let push_op w op =
    let b = Buffer.create 128 in
    encode_op w b ~blocks:no_blocks op;
    add_uv w.w_index (Buffer.length b);
    Buffer.add_buffer w.w_ops b;
    w.w_n_ops <- w.w_n_ops + 1

  let assemble kind payload =
    let doc = Buffer.create (Buffer.length payload + 16) in
    Buffer.add_string doc magic;
    add_uv doc version;
    Buffer.add_char doc (Char.chr (kind_code kind));
    add_uv doc (Buffer.length payload);
    Buffer.add_buffer doc payload;
    Buffer.contents doc

  let tables w payload =
    add_uv payload w.w_n_strings;
    Buffer.add_buffer payload w.w_strtab;
    add_uv payload w.w_n_pool;
    Buffer.add_buffer payload w.w_pool

  let close w =
    if w.w_undefined > 0 then
      Diag.errorf
        "bytecode: %d value%s used by the emitted ops %s never defined"
        w.w_undefined
        (if w.w_undefined = 1 then "" else "s")
        (if w.w_undefined = 1 then "is" else "are")
    else begin
      let payload = Buffer.create (Buffer.length w.w_ops + 256) in
      tables w payload;
      add_uv payload w.w_n_vals;
      add_uv payload w.w_n_ops;
      Buffer.add_buffer payload w.w_index;
      Buffer.add_buffer payload w.w_ops;
      Ok (assemble Module_doc payload)
    end

  let module_to_string ops =
    let w = create () in
    match Diag.protect (fun () -> List.iter (push_op w) ops) with
    | Error d -> Error d
    | Ok () -> close w

  (* ---------------- dialect specs ---------------- *)

  let add_opt_str w buf = function
    | None -> Buffer.add_char buf '\x00'
    | Some s ->
        Buffer.add_char buf '\x01';
        add_uv buf (str_ref w s)

  let rec encode_constraint w buf (c : C.t) =
    let tag t = Buffer.add_char buf (Char.chr t) in
    let clist cs =
      add_uv buf (List.length cs);
      List.iter (encode_constraint w buf) cs
    in
    let opt_params = function
      | None -> Buffer.add_char buf '\x00'
      | Some cs ->
          Buffer.add_char buf '\x01';
          clist cs
    in
    match c with
    | C.Any -> tag 0
    | C.Any_type -> tag 1
    | C.Any_attr -> tag 2
    | C.Eq a ->
        tag 3;
        add_uv buf (attr_ref w a)
    | C.Base_type { dialect; name; params } ->
        tag 4;
        add_uv buf (str_ref w dialect);
        add_uv buf (str_ref w name);
        opt_params params
    | C.Base_attr { dialect; name; params } ->
        tag 5;
        add_uv buf (str_ref w dialect);
        add_uv buf (str_ref w name);
        opt_params params
    | C.Int_param { ik_width; ik_signedness } ->
        tag 6;
        add_uv buf ik_width;
        Buffer.add_char buf (Char.chr (signedness_code ik_signedness))
    | C.Float_param None -> tag 7
    | C.Float_param (Some k) ->
        tag 8;
        Buffer.add_char buf (Char.chr (float_kind_code k))
    | C.String_param -> tag 9
    | C.Symbol_param -> tag 10
    | C.Bool_param -> tag 11
    | C.Location_param -> tag 12
    | C.Type_id_param -> tag 13
    | C.Enum_param { dialect; enum } ->
        tag 14;
        add_uv buf (str_ref w dialect);
        add_uv buf (str_ref w enum)
    | C.Array_any -> tag 15
    | C.Array_of c ->
        tag 16;
        encode_constraint w buf c
    | C.Array_exact cs ->
        tag 17;
        clist cs
    | C.Any_of cs ->
        tag 18;
        clist cs
    | C.And cs ->
        tag 19;
        clist cs
    | C.Not c ->
        tag 20;
        encode_constraint w buf c
    | C.Var { v_name; v_constraint } ->
        tag 21;
        add_uv buf (str_ref w v_name);
        encode_constraint w buf v_constraint
    | C.Native { name; base; snippets } ->
        tag 22;
        add_uv buf (str_ref w name);
        encode_constraint w buf base;
        add_uv buf (List.length snippets);
        List.iter (fun s -> add_uv buf (str_ref w s)) snippets
    | C.Native_param { name; class_name } ->
        tag 23;
        add_uv buf (str_ref w name);
        add_uv buf (str_ref w class_name)
    | C.Variadic c ->
        tag 24;
        encode_constraint w buf c
    | C.Optional c ->
        tag 25;
        encode_constraint w buf c

  let encode_slot w buf (s : Resolve.slot) =
    add_uv buf (str_ref w s.s_name);
    encode_constraint w buf s.s_constraint;
    add_loc w buf s.s_loc

  let encode_slots w buf slots =
    add_uv buf (List.length slots);
    List.iter (encode_slot w buf) slots

  let encode_strs w buf ss =
    add_uv buf (List.length ss);
    List.iter (fun s -> add_uv buf (str_ref w s)) ss

  let encode_typedef w buf (td : Resolve.typedef) =
    add_uv buf (str_ref w td.td_name);
    add_opt_str w buf td.td_summary;
    encode_slots w buf td.td_params;
    encode_strs w buf td.td_cpp;
    add_loc w buf td.td_loc

  let encode_region_def w buf (r : Resolve.region) =
    add_uv buf (str_ref w r.reg_name);
    encode_slots w buf r.reg_args;
    add_opt_str w buf r.reg_terminator

  let encode_op_def w buf (o : Resolve.op) =
    add_uv buf (str_ref w o.op_name);
    add_opt_str w buf o.op_summary;
    add_uv buf (List.length o.op_vars);
    List.iter
      (fun (v : C.var) ->
        add_uv buf (str_ref w v.v_name);
        encode_constraint w buf v.v_constraint)
      o.op_vars;
    encode_slots w buf o.op_operands;
    encode_slots w buf o.op_results;
    encode_slots w buf o.op_attributes;
    add_uv buf (List.length o.op_regions);
    List.iter (encode_region_def w buf) o.op_regions;
    (match o.op_successors with
    | None -> Buffer.add_char buf '\x00'
    | Some ss ->
        Buffer.add_char buf '\x01';
        encode_strs w buf ss);
    add_opt_str w buf o.op_format;
    encode_strs w buf o.op_cpp;
    add_loc w buf o.op_loc

  let encode_enum w buf (e : Ast.enum_def) =
    add_uv buf (str_ref w e.e_name);
    encode_strs w buf e.e_cases;
    add_loc w buf e.e_loc

  let encode_dialect w buf (dl : Resolve.dialect) =
    add_uv buf (str_ref w dl.dl_name);
    add_uv buf (List.length dl.dl_types);
    List.iter (encode_typedef w buf) dl.dl_types;
    add_uv buf (List.length dl.dl_attrs);
    List.iter (encode_typedef w buf) dl.dl_attrs;
    add_uv buf (List.length dl.dl_ops);
    List.iter (encode_op_def w buf) dl.dl_ops;
    add_uv buf (List.length dl.dl_enums);
    List.iter (encode_enum w buf) dl.dl_enums

  let dialects_to_string dls =
    let w = create () in
    let body = Buffer.create 512 in
    match
      Diag.protect (fun () ->
          add_uv body (List.length dls);
          List.iter (encode_dialect w body) dls)
    with
    | Error d -> Error d
    | Ok () ->
        let payload = Buffer.create (Buffer.length body + 256) in
        tables w payload;
        Buffer.add_buffer payload body;
        Ok (assemble Dialect_doc payload)
end

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = {
  c_file : string;
  c_buf : string;
  mutable c_pos : int;
  mutable c_end : int;
}

let cursor ?(file = "<bytecode>") s =
  { c_file = file; c_buf = s; c_pos = 0; c_end = String.length s }

let cfail c fmt =
  Diag.raise_error
    ~loc:(Loc.point (Loc.start_of_file c.c_file))
    ("malformed bytecode: " ^^ fmt ^^ " at byte %d")

let remaining c = c.c_end - c.c_pos

let read_u8 c =
  if c.c_pos >= c.c_end then cfail c "truncated input" c.c_pos;
  (* In bounds by the check above (c_end <= String.length c_buf). *)
  let b = Char.code (String.unsafe_get c.c_buf c.c_pos) in
  c.c_pos <- c.c_pos + 1;
  b

(* The varint readers are the innermost decode primitives (~10 calls per
   op); their loops live at top level — a [let rec] nested inside the
   reader would allocate a closure on every call. The one-byte case
   returns before entering the loop: nearly every count, index and string
   reference fits in seven bits. *)
let rec read_uv_go c shift acc =
  if shift > 56 then cfail c "oversized varint" c.c_pos;
  let b = read_u8 c in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc else read_uv_go c (shift + 7) acc

let read_uv c =
  let b = read_u8 c in
  if b land 0x80 = 0 then b
  else
    let v = read_uv_go c 7 (b land 0x7f) in
    if v < 0 then cfail c "oversized varint" c.c_pos else v

let rec read_v64_go c shift acc =
  if shift > 63 then cfail c "oversized varint" c.c_pos;
  let b = read_u8 c in
  let acc =
    Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift)
  in
  if b land 0x80 = 0 then acc else read_v64_go c (shift + 7) acc

let read_v64 c = unzigzag (read_v64_go c 0 0L)

let read_bytes c n =
  if n < 0 || n > remaining c then cfail c "truncated input" c.c_pos;
  let s = String.sub c.c_buf c.c_pos n in
  c.c_pos <- c.c_pos + n;
  s

(* A count of things each at least one byte wide: reject implausible values
   up front so corrupted counts cannot drive huge allocations. *)
let read_count c what =
  let n = read_uv c in
  if n > remaining c then cfail c "implausible %s count %d" what n c.c_pos;
  n

type doc_header = { dh_version : int; dh_kind : kind; dh_payload_end : int }

let read_header c =
  if remaining c < magic_len || String.sub c.c_buf c.c_pos magic_len <> magic
  then cfail c "bad magic (not an IRDL bytecode document)" c.c_pos;
  c.c_pos <- c.c_pos + magic_len;
  let v = read_uv c in
  if v < 1 || v > version then
    Diag.raise_error
      ~loc:(Loc.point (Loc.start_of_file c.c_file))
      "unsupported bytecode version %d (this reader supports versions 1..%d)"
      v version;
  let kind =
    match read_u8 c with
    | 0 -> Module_doc
    | 1 -> Dialect_doc
    | k -> cfail c "unknown document kind %d" k c.c_pos
  in
  let plen = read_uv c in
  if plen > remaining c then
    cfail c "truncated document (payload of %d bytes, %d remain)" plen
      (remaining c) c.c_pos;
  { dh_version = v; dh_kind = kind; dh_payload_end = c.c_pos + plen }

type doc_info = {
  di_kind : kind;
  di_version : int;
  di_offset : int;
  di_length : int;
}

let documents ?file s =
  let c = cursor ?file s in
  let rec go acc =
    if remaining c = 0 then List.rev acc
    else
      let off = c.c_pos in
      match Diag.protect (fun () -> read_header c) with
      | Error _ ->
          (* Undecodable tail: one opaque trailing slice, so a consumer
             still visits (and reports) it. *)
          List.rev
            ({
               di_kind = Module_doc;
               di_version = 0;
               di_offset = off;
               di_length = remaining c;
             }
            :: acc)
      | Ok h ->
          c.c_pos <- h.dh_payload_end;
          go
            ({
               di_kind = h.dh_kind;
               di_version = h.dh_version;
               di_offset = off;
               di_length = h.dh_payload_end - off;
             }
            :: acc)
  in
  go []

let split_documents ?file s =
  match documents ?file s with
  | [] | [ _ ] -> [ s ]
  | docs ->
      List.map (fun d -> String.sub s d.di_offset d.di_length) docs

(* [Array.init]'s/[List.init]'s application order is unspecified; cursor
   reads need strict left-to-right sequencing. *)
let read_list n f =
  let rec go i acc =
    if i = n then List.rev acc
    else
      let x = f i in
      go (i + 1) (x :: acc)
  in
  go 0 []

let read_array n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let read_strtab c =
  let n = read_count c "string table" in
  read_array n (fun _ ->
      let len = read_uv c in
      read_bytes c len)

let str_at c strs i =
  if i < 0 || i >= Array.length strs then
    cfail c "string reference %d out of range" i c.c_pos;
  strs.(i)

type pool_entry = P_ty of Attr.ty | P_attr of Attr.t

let read_pool c strs =
  let n = read_count c "pool" in
  let pool = Array.make n (P_attr Attr.Unit) in
  (* Children may only reference strictly earlier (already decoded)
     entries; [filled] enforces it while the table is being read. *)
  let filled = ref 0 in
  let ty_at i =
    if i < 0 || i >= !filled then
      cfail c "pool reference %d out of range" i c.c_pos;
    match pool.(i) with
    | P_ty ty -> ty
    | P_attr _ -> cfail c "pool entry %d is not a type" i c.c_pos
  in
  let attr_at i =
    if i < 0 || i >= !filled then
      cfail c "pool reference %d out of range" i c.c_pos;
    match pool.(i) with
    | P_attr a -> a
    | P_ty _ -> cfail c "pool entry %d is not an attribute" i c.c_pos
  in
  let read_str () = str_at c strs (read_uv c) in
  let read_tys () =
    let k = read_count c "type list" in
    read_list k (fun _ -> ty_at (read_uv c))
  in
  let read_attrs () =
    let k = read_count c "attribute list" in
    read_list k (fun _ -> attr_at (read_uv c))
  in
  let signedness_of = function
    | 0 -> Attr.Signless
    | 1 -> Attr.Signed
    | 2 -> Attr.Unsigned
    | s -> cfail c "bad signedness code %d" s c.c_pos
  in
  let float_kind_of = function
    | 0 -> Attr.BF16
    | 1 -> Attr.F16
    | 2 -> Attr.F32
    | 3 -> Attr.F64
    | k -> cfail c "bad float kind code %d" k c.c_pos
  in
  for i = 0 to n - 1 do
    let entry =
      match read_u8 c with
      | 0x01 ->
          let width = read_uv c in
          if width < 1 || width > 1 lsl 24 then
            cfail c "implausible integer width %d" width c.c_pos;
          let s = signedness_of (read_u8 c) in
          P_ty (Attr.integer ~signedness:s width)
      | 0x02 -> P_ty (Attr.intern_ty (Attr.Float (float_kind_of (read_u8 c))))
      | 0x03 -> P_ty Attr.index
      | 0x04 -> P_ty Attr.none
      | 0x05 ->
          let inputs = read_tys () in
          let outputs = read_tys () in
          P_ty (Attr.function_ty ~inputs ~outputs)
      | 0x06 -> P_ty (Attr.tuple (read_tys ()))
      | 0x07 ->
          let dialect = read_str () in
          let name = read_str () in
          P_ty (Attr.dynamic ~dialect ~name (read_attrs ()))
      | 0x20 -> P_attr Attr.unit
      | 0x21 -> P_attr (Attr.bool (read_u8 c <> 0))
      | 0x22 ->
          let v = read_v64 c in
          P_attr (Attr.int ~ty:(ty_at (read_uv c)) v)
      | 0x23 ->
          let bits = read_v64 c in
          P_attr
            (Attr.float ~ty:(ty_at (read_uv c)) (Int64.float_of_bits bits))
      | 0x24 -> P_attr (Attr.string (read_str ()))
      | 0x25 -> P_attr (Attr.array (read_attrs ()))
      | 0x26 ->
          let k = read_count c "dictionary" in
          let entries =
            read_list k (fun _ ->
                let key = read_str () in
                (key, attr_at (read_uv c)))
          in
          P_attr (Attr.dict entries)
      | 0x27 -> P_attr (Attr.typ (ty_at (read_uv c)))
      | 0x28 ->
          let dialect = read_str () in
          let enum = read_str () in
          P_attr (Attr.enum ~dialect ~enum (read_str ()))
      | 0x29 -> P_attr (Attr.symbol (read_str ()))
      | 0x2a ->
          let file = read_str () in
          let line = read_uv c in
          P_attr (Attr.location ~file ~line ~col:(read_uv c))
      | 0x2b -> P_attr (Attr.type_id (read_str ()))
      | 0x2c ->
          let tag = read_str () in
          P_attr (Attr.opaque ~tag (read_str ()))
      | 0x2d ->
          let dialect = read_str () in
          let name = read_str () in
          P_attr (Attr.dyn_attr ~dialect ~name (read_attrs ()))
      | t -> cfail c "unknown pool entry tag 0x%02x" t c.c_pos
    in
    pool.(i) <- entry;
    filled := i + 1
  done;
  (ty_at, attr_at)

let read_loc c strs =
  let file = str_at c strs (read_uv c) in
  let line = read_uv c in
  let col = read_uv c in
  if file = "" && line = 0 then Loc.unknown
  else Loc.point { Loc.file; line; col; offset = 0 }

(* ---------------- module decoding ---------------- *)

type mstate = {
  ms_vals : Graph.value option array;
  mutable ms_forwards : (int * Graph.value) list;
  mutable ms_skipped : bool;
  ms_budget : Limits.budget;
      (** session-wide (spans documents in a multi-doc buffer); blown
          budgets raise {!Diag.Fatal_exn} and end the whole session *)
}

let ms_use c st idx =
  if idx < 0 || idx >= Array.length st.ms_vals then
    cfail c "value index %d out of range" idx c.c_pos;
  match st.ms_vals.(idx) with
  | Some v -> v
  | None ->
      let v = Graph.Value.forward_ref (Printf.sprintf "bc%d" idx) in
      st.ms_vals.(idx) <- Some v;
      st.ms_forwards <- (idx, v) :: st.ms_forwards;
      v

(* Bind index [idx] to the fresh value [v] (an op result or block argument
   just created). If a use already allocated a placeholder at [idx], patch
   it in place — preserving the identity its uses were linked to — exactly
   as the textual parser's [define_value] does. *)
let ms_def c st idx (v : Graph.value) =
  if idx < 0 || idx >= Array.length st.ms_vals then
    cfail c "value index %d out of range" idx c.c_pos;
  match st.ms_vals.(idx) with
  | None ->
      st.ms_vals.(idx) <- Some v;
      v
  | Some ({ v_def = Graph.Forward_ref _; _ } as ph) ->
      ph.v_ty <- v.v_ty;
      ph.v_def <- v.v_def;
      (match v.v_def with
      | Graph.Op_result { op; index } -> op.op_results.(index) <- ph
      | Graph.Block_arg { block; index } -> block.blk_args.(index) <- ph
      | _ -> ());
      st.ms_forwards <- List.filter (fun (i, _) -> i <> idx) st.ms_forwards;
      ph
  | Some _ -> cfail c "value index %d defined twice" idx c.c_pos

(* The field loops below live at top level with every free variable passed
   as an argument: this is the hot path of [read_module] at 10^6 ops, and
   closure-based loops ([read_list], or a [let rec] nested in the decoder)
   would allocate per op. The intermediate (ty, index) pair lists are gone
   for the same reason — value indices land in a scratch array instead. *)
let read_operands c st n =
  if n = 0 then [||]
  else begin
    let a = Array.make n (ms_use c st (read_uv c)) in
    for i = 1 to n - 1 do
      a.(i) <- ms_use c st (read_uv c)
    done;
    a
  end

(* Result types and their value indices, as two arrays read in interleaved
   (ty, index) order. *)
let read_results c ty_at n =
  if n = 0 then ([||], [||])
  else begin
    let ty0 = ty_at (read_uv c) in
    let tys = Array.make n ty0 in
    let idx = Array.make n (read_uv c) in
    for i = 1 to n - 1 do
      tys.(i) <- ty_at (read_uv c);
      idx.(i) <- read_uv c
    done;
    (tys, idx)
  end

let rec read_attr_pairs c strs attr_at n =
  if n = 0 then []
  else
    let key = str_at c strs (read_uv c) in
    let a = attr_at (read_uv c) in
    (key, a) :: read_attr_pairs c strs attr_at (n - 1)

let rec read_successors c blocks n =
  if n = 0 then []
  else
    let j = read_uv c in
    let b =
      match blocks with
      | Some bs when j >= 0 && j < Array.length bs -> bs.(j)
      | Some _ -> cfail c "successor block index %d out of range" j c.c_pos
      | None -> cfail c "successor outside a region" j c.c_pos
    in
    b :: read_successors c blocks (n - 1)

let rec decode_op c strs ((ty_at, attr_at) as pool) st ~blocks : Graph.op =
  let name = str_at c strs (read_uv c) in
  let loc = read_loc c strs in
  Limits.tick_op st.ms_budget
    ~loc:(if Loc.is_unknown loc then Loc.point (Loc.start_of_file c.c_file)
          else loc);
  let operands = read_operands c st (read_count c "operand") in
  let n_results = read_count c "result" in
  let result_tys, res_idx = read_results c ty_at n_results in
  let attrs = read_attr_pairs c strs attr_at (read_count c "attribute") in
  let successors = read_successors c blocks (read_count c "successor") in
  let regions = decode_regions c strs pool st (read_count c "region") in
  let op =
    Graph.Op.create_prebuilt ~operands ~result_tys ~attrs ~regions
      ~successors ~loc name
  in
  for i = 0 to n_results - 1 do
    op.op_results.(i) <- ms_def c st res_idx.(i) op.op_results.(i)
  done;
  op

and decode_regions c strs pool st n =
  if n = 0 then []
  else
    let r = decode_region c strs pool st in
    r :: decode_regions c strs pool st (n - 1)

and decode_region c strs pool st : Graph.region =
  Limits.enter_region st.ms_budget
    ~loc:(Loc.point (Loc.start_of_file c.c_file));
  Fun.protect ~finally:(fun () -> Limits.leave_region st.ms_budget)
  @@ fun () ->
  let ty_at = fst pool in
  let rlen = read_uv c in
  if rlen > remaining c then cfail c "truncated region (%d bytes)" rlen c.c_pos;
  let rend = c.c_pos + rlen in
  let n_blocks = read_count c "block" in
  let blocks =
    read_array n_blocks (fun _ ->
        let n_args = read_count c "block argument" in
        let arg_idx = if n_args = 0 then [||] else Array.make n_args 0 in
        let rec arg_tys_at i =
          if i = n_args then []
          else
            let ty = ty_at (read_uv c) in
            arg_idx.(i) <- read_uv c;
            ty :: arg_tys_at (i + 1)
        in
        let b = Graph.Block.create ~arg_tys:(arg_tys_at 0) () in
        for i = 0 to n_args - 1 do
          b.Graph.blk_args.(i) <- ms_def c st arg_idx.(i) b.Graph.blk_args.(i)
        done;
        b)
  in
  Array.iter
    (fun b ->
      let n_ops = read_count c "op" in
      for _ = 1 to n_ops do
        Graph.Block.append b (decode_op c strs pool st ~blocks:(Some blocks))
      done)
    blocks;
  if c.c_pos <> rend then
    cfail c "region length out of sync (expected end %d)" rend c.c_pos;
  Graph.Region.create ~blocks:(Array.to_list blocks) ()

(* ---------------- streaming session ---------------- *)

(* Mirrors [Ir.Parser.Stream]: an op is yielded only once every forward
   reference pending at its decode has resolved, so operands are exactly
   what the materializing reader would produce; the pending FIFO preserves
   document order. *)

type pending = { pd_op : Graph.op; mutable pd_forwards : Graph.value list }

type docstate = {
  d_cur : cursor;  (* limited to this document's payload *)
  d_strs : string array;
  d_pool : (int -> Attr.ty) * (int -> Attr.t);
  d_state : mstate;
  d_lens : int array;
  mutable d_i : int;
}

module Stream = struct
  type session = {
    s_cur : cursor;  (* spans the whole (possibly multi-document) buffer *)
    s_engine : Diag.Engine.t option;
    s_queue : pending Queue.t;
    s_budget : Limits.budget;  (* shared by every document of the buffer *)
    mutable s_doc : docstate option;
    mutable s_failed : Diag.t option;
    mutable s_eof : bool;
  }

  let create ?(file = "<bytecode>") ?engine ?(limits = Limits.unlimited)
      (_ctx : Context.t) s =
    let budget = Limits.budget limits in
    let sp =
      {
        s_cur = cursor ~file s;
        s_engine = engine;
        s_queue = Queue.create ();
        s_budget = budget;
        s_doc = None;
        s_failed = None;
        s_eof = false;
      }
    in
    (* An over-budget payload fails like everything else in a session — a
       sticky [Error] from [next], never an exception out of [create]. *)
    (match
       Diag.protect_any (fun () ->
           Limits.check_payload budget ~file (String.length s))
     with
    | Ok () -> ()
    | Error d ->
        (match engine with Some e -> Diag.Engine.emit e d | None -> ());
        sp.s_failed <- Some d;
        sp.s_eof <- true);
    sp

  (* Fail-soft sessions recover at the next document — except from budget
     violations, which must stay sticky: resuming after "too many ops"
     would keep consuming the very resource that ran out. *)
  let fail sp d =
    match sp.s_engine with
    | Some e when not (Limits.is_budget_code d.Diag.code) ->
        Diag.Engine.emit e d;
        Ok ()
    | Some e ->
        Diag.Engine.emit e d;
        sp.s_failed <- Some d;
        Error d
    | None ->
        sp.s_failed <- Some d;
        Error d

  (* End-of-document: report (or, after a [skip], release) every value
     still undefined, then mark queued ops deliverable as-is — a document
     boundary is final, nothing later can resolve them. *)
  let finish_doc sp doc =
    let st = doc.d_state in
    let outcome =
      match st.ms_forwards with
      | [] -> Ok ()
      | forwards ->
          if st.ms_skipped then begin
            (* Skipped ops own the missing definitions; stand the
               placeholders down like a streamed-and-released subtree. *)
            List.iter
              (fun (_, (v : Graph.value)) -> v.v_def <- Graph.Released)
              forwards;
            Ok ()
          end
          else
            let d =
              Diag.error
                ~loc:(Loc.point (Loc.start_of_file sp.s_cur.c_file))
                "malformed bytecode: %d value index%s used but never defined"
                (List.length forwards)
                (if List.length forwards = 1 then "" else "es")
            in
            fail sp d
    in
    Queue.iter (fun p -> p.pd_forwards <- []) sp.s_queue;
    sp.s_doc <- None;
    outcome

  (* Abandon a document after a decode error: jump to its end so the next
     document (if any) still parses, and hand queued ops out as-is. *)
  let abandon_doc sp doc =
    sp.s_cur.c_pos <- doc.d_cur.c_end;
    Queue.iter (fun p -> p.pd_forwards <- []) sp.s_queue;
    sp.s_doc <- None

  let open_doc sp =
    match Diag.protect_any (fun () -> read_header sp.s_cur) with
    | Error d ->
        (* Header garbage: no payload length to resync on. *)
        sp.s_eof <- true;
        fail sp d
    | Ok h when h.dh_kind <> Module_doc ->
        sp.s_cur.c_pos <- h.dh_payload_end;
        fail sp
          (Diag.error
             ~loc:(Loc.point (Loc.start_of_file sp.s_cur.c_file))
             "bytecode document holds dialect definitions, expected an IR \
              module (load it with -d)")
    | Ok h -> (
        let doc_cur =
          {
            c_file = sp.s_cur.c_file;
            c_buf = sp.s_cur.c_buf;
            c_pos = sp.s_cur.c_pos;
            c_end = h.dh_payload_end;
          }
        in
        match
          Diag.protect_any (fun () ->
              Failpoints.hit "bytecode.decode";
              let strs = read_strtab doc_cur in
              let pool = read_pool doc_cur strs in
              let total_vals = read_uv doc_cur in
              if total_vals > h.dh_payload_end - sp.s_cur.c_pos then
                cfail doc_cur "implausible value count %d" total_vals
                  doc_cur.c_pos;
              let n_ops = read_count doc_cur "top-level op" in
              let lens = read_array n_ops (fun _ -> read_uv doc_cur) in
              {
                d_cur = doc_cur;
                d_strs = strs;
                d_pool = pool;
                d_state =
                  {
                    ms_vals = Array.make total_vals None;
                    ms_forwards = [];
                    ms_skipped = false;
                    ms_budget = sp.s_budget;
                  };
                d_lens = lens;
                d_i = 0;
              })
        with
        | Error d ->
            sp.s_cur.c_pos <- h.dh_payload_end;
            fail sp d
        | Ok doc ->
            sp.s_doc <- Some doc;
            sp.s_cur.c_pos <- h.dh_payload_end;
            Ok ())

  let head_ready sp =
    match Queue.peek_opt sp.s_queue with
    | None -> false
    | Some p ->
        p.pd_forwards <-
          List.filter
            (fun (v : Graph.value) ->
              match v.v_def with Graph.Forward_ref _ -> true | _ -> false)
            p.pd_forwards;
        p.pd_forwards = []

  let decode_top doc =
    let len = doc.d_lens.(doc.d_i) in
    let c = doc.d_cur in
    if len > remaining c then cfail c "truncated op (%d bytes)" len c.c_pos;
    let op_end = c.c_pos + len in
    let op = decode_op c doc.d_strs doc.d_pool doc.d_state ~blocks:None in
    if c.c_pos <> op_end then
      cfail c "op length out of sync (expected end %d)" op_end c.c_pos;
    doc.d_i <- doc.d_i + 1;
    op

  let rec next sp : (Graph.op option, Diag.t) result =
    match sp.s_failed with
    | Some d -> Error d
    | None ->
        if head_ready sp then Ok (Some (Queue.pop sp.s_queue).pd_op)
        else begin
          match sp.s_doc with
          | Some doc when doc.d_i < Array.length doc.d_lens -> (
              (* [match ... with exception] rather than [protect_any]: this
                 runs once per op and the thunk closure would be its only
                 allocation. The cold exception arm re-raises into
                 [protect_any] to get the standard conversion. *)
              match decode_top doc with
              | exception e -> (
                  let r = Diag.protect_any (fun () -> raise e) in
                  match r with
                  | Ok _ -> assert false
                  | Error d -> (
                      abandon_doc sp doc;
                      match fail sp d with
                      | Error d -> Error d
                      | Ok () -> next sp))
              | op when
                  (match doc.d_state.ms_forwards with
                  | [] -> true
                  | _ :: _ -> false)
                  && Queue.is_empty sp.s_queue ->
                  (* Nothing unresolved and nothing queued ahead: the op is
                     deliverable as-is, no need to round-trip the FIFO. *)
                  Ok (Some op)
              | op ->
                  let forwards =
                    List.map snd doc.d_state.ms_forwards
                    |> List.filter (fun (v : Graph.value) ->
                           match v.v_def with
                           | Graph.Forward_ref _ -> true
                           | _ -> false)
                  in
                  Queue.push { pd_op = op; pd_forwards = forwards } sp.s_queue;
                  next sp)
          | Some doc -> (
              match finish_doc sp doc with
              | Error d -> Error d
              | Ok () -> next sp)
          | None ->
              if remaining sp.s_cur = 0 then
                if Queue.is_empty sp.s_queue then begin
                  sp.s_eof <- true;
                  Ok None
                end
                else Ok (Some (Queue.pop sp.s_queue).pd_op)
              else begin
                match open_doc sp with
                | Error d -> Error d
                | Ok () -> if sp.s_eof then Ok None else next sp
              end
        end

  (* Skip the next top-level op without materializing it: one index hop.
     Values it would have defined surface as [Released] at end of document.
     [Ok false] at end of input. *)
  let rec skip sp : (bool, Diag.t) result =
    match sp.s_failed with
    | Some d -> Error d
    | None -> (
        match sp.s_doc with
        | Some doc when doc.d_i < Array.length doc.d_lens -> (
            match
              Diag.protect_any (fun () ->
                  let len = doc.d_lens.(doc.d_i) in
                  let c = doc.d_cur in
                  if len > remaining c then
                    cfail c "truncated op (%d bytes)" len c.c_pos;
                  c.c_pos <- c.c_pos + len;
                  doc.d_i <- doc.d_i + 1;
                  doc.d_state.ms_skipped <- true)
            with
            | Ok () -> Ok true
            | Error d -> (
                abandon_doc sp doc;
                match fail sp d with Error d -> Error d | Ok () -> skip sp))
        | Some doc -> (
            match finish_doc sp doc with
            | Error d -> Error d
            | Ok () -> skip sp)
        | None ->
            if remaining sp.s_cur = 0 then Ok false
            else begin
              match open_doc sp with
              | Error d -> Error d
              | Ok () -> if sp.s_eof then Ok false else skip sp
            end)

  let release = Graph.release
end

let read_module ?file ?engine ?limits ctx s =
  let sp = Stream.create ?file ?engine ?limits ctx s in
  let rec drain acc =
    match Stream.next sp with
    | Ok None -> Ok (List.rev acc)
    | Ok (Some op) -> drain (op :: acc)
    | Error d -> Error d
  in
  drain []

(* ---------------- dialect decoding ---------------- *)

let read_opt_str c strs =
  match read_u8 c with
  | 0 -> None
  | 1 -> Some (str_at c strs (read_uv c))
  | f -> cfail c "bad option flag %d" f c.c_pos

let rec decode_constraint c strs attr_at : C.t =
  let clist () =
    let n = read_count c "constraint list" in
    read_list n (fun _ -> decode_constraint c strs attr_at)
  in
  let opt_params () =
    match read_u8 c with
    | 0 -> None
    | 1 -> Some (clist ())
    | f -> cfail c "bad option flag %d" f c.c_pos
  in
  let read_str () = str_at c strs (read_uv c) in
  match read_u8 c with
  | 0 -> C.Any
  | 1 -> C.Any_type
  | 2 -> C.Any_attr
  | 3 -> C.Eq (attr_at (read_uv c))
  | 4 ->
      let dialect = read_str () in
      let name = read_str () in
      C.Base_type { dialect; name; params = opt_params () }
  | 5 ->
      let dialect = read_str () in
      let name = read_str () in
      C.Base_attr { dialect; name; params = opt_params () }
  | 6 ->
      let ik_width = read_uv c in
      let ik_signedness =
        match read_u8 c with
        | 0 -> Attr.Signless
        | 1 -> Attr.Signed
        | 2 -> Attr.Unsigned
        | s -> cfail c "bad signedness code %d" s c.c_pos
      in
      C.Int_param { ik_width; ik_signedness }
  | 7 -> C.Float_param None
  | 8 ->
      C.Float_param
        (Some
           (match read_u8 c with
           | 0 -> Attr.BF16
           | 1 -> Attr.F16
           | 2 -> Attr.F32
           | 3 -> Attr.F64
           | k -> cfail c "bad float kind code %d" k c.c_pos))
  | 9 -> C.String_param
  | 10 -> C.Symbol_param
  | 11 -> C.Bool_param
  | 12 -> C.Location_param
  | 13 -> C.Type_id_param
  | 14 ->
      let dialect = read_str () in
      C.Enum_param { dialect; enum = read_str () }
  | 15 -> C.Array_any
  | 16 -> C.Array_of (decode_constraint c strs attr_at)
  | 17 -> C.Array_exact (clist ())
  | 18 -> C.Any_of (clist ())
  | 19 -> C.And (clist ())
  | 20 -> C.Not (decode_constraint c strs attr_at)
  | 21 ->
      let v_name = read_str () in
      C.Var { v_name; v_constraint = decode_constraint c strs attr_at }
  | 22 ->
      let name = read_str () in
      let base = decode_constraint c strs attr_at in
      let n = read_count c "snippet list" in
      C.Native { name; base; snippets = read_list n (fun _ -> read_str ()) }
  | 23 ->
      let name = read_str () in
      C.Native_param { name; class_name = read_str () }
  | 24 -> C.Variadic (decode_constraint c strs attr_at)
  | 25 -> C.Optional (decode_constraint c strs attr_at)
  | t -> cfail c "unknown constraint tag %d" t c.c_pos

let decode_slot c strs attr_at : Resolve.slot =
  let s_name = str_at c strs (read_uv c) in
  let s_constraint = decode_constraint c strs attr_at in
  { s_name; s_constraint; s_loc = read_loc c strs }

let decode_slots c strs attr_at =
  let n = read_count c "slot list" in
  read_list n (fun _ -> decode_slot c strs attr_at)

let decode_strs c strs =
  let n = read_count c "string list" in
  read_list n (fun _ -> str_at c strs (read_uv c))

let decode_typedef c strs attr_at : Resolve.typedef =
  let td_name = str_at c strs (read_uv c) in
  let td_summary = read_opt_str c strs in
  let td_params = decode_slots c strs attr_at in
  let td_cpp = decode_strs c strs in
  { td_name; td_summary; td_params; td_cpp; td_loc = read_loc c strs }

let decode_region_def c strs attr_at : Resolve.region =
  let reg_name = str_at c strs (read_uv c) in
  let reg_args = decode_slots c strs attr_at in
  { reg_name; reg_args; reg_terminator = read_opt_str c strs }

let decode_op_def c strs attr_at : Resolve.op =
  let op_name = str_at c strs (read_uv c) in
  let op_summary = read_opt_str c strs in
  let n_vars = read_count c "variable list" in
  let op_vars =
    read_list n_vars (fun _ ->
        let v_name = str_at c strs (read_uv c) in
        { C.v_name; v_constraint = decode_constraint c strs attr_at })
  in
  let op_operands = decode_slots c strs attr_at in
  let op_results = decode_slots c strs attr_at in
  let op_attributes = decode_slots c strs attr_at in
  let n_regions = read_count c "region list" in
  let op_regions = read_list n_regions (fun _ -> decode_region_def c strs attr_at) in
  let op_successors =
    match read_u8 c with
    | 0 -> None
    | 1 -> Some (decode_strs c strs)
    | f -> cfail c "bad option flag %d" f c.c_pos
  in
  let op_format = read_opt_str c strs in
  let op_cpp = decode_strs c strs in
  {
    op_name;
    op_summary;
    op_vars;
    op_operands;
    op_results;
    op_attributes;
    op_regions;
    op_successors;
    op_format;
    op_cpp;
    op_loc = read_loc c strs;
  }

let decode_enum c strs : Ast.enum_def =
  let e_name = str_at c strs (read_uv c) in
  let e_cases = decode_strs c strs in
  { e_name; e_cases; e_loc = read_loc c strs }

let decode_dialect c strs attr_at : Resolve.dialect =
  let dl_name = str_at c strs (read_uv c) in
  let n_types = read_count c "type list" in
  let dl_types = read_list n_types (fun _ -> decode_typedef c strs attr_at) in
  let n_attrs = read_count c "attribute list" in
  let dl_attrs = read_list n_attrs (fun _ -> decode_typedef c strs attr_at) in
  let n_ops = read_count c "op list" in
  let dl_ops = read_list n_ops (fun _ -> decode_op_def c strs attr_at) in
  let n_enums = read_count c "enum list" in
  let dl_enums = read_list n_enums (fun _ -> decode_enum c strs) in
  {
    dl_name;
    dl_types;
    dl_attrs;
    dl_ops;
    dl_enums;
    (* The surface AST is not serialized (it is introspection-only); a
       minimal one is rebuilt so enum lookups through it keep working. *)
    dl_ast =
      {
        Ast.d_name = dl_name;
        d_items = List.map (fun e -> Ast.I_enum e) dl_enums;
        d_loc = Loc.unknown;
      };
  }

let read_dialects ?(file = "<bytecode>") ?engine s =
  let c = cursor ~file s in
  let fail_or acc d =
    match engine with
    | Some e ->
        Diag.Engine.emit e d;
        Ok acc
    | None -> Error d
  in
  let rec go acc =
    if remaining c = 0 then Ok (List.rev acc)
    else
      match Diag.protect_any (fun () -> read_header c) with
      | Error d -> (
          match fail_or acc d with
          | Error d -> Error d
          | Ok acc ->
              (* No trustworthy payload length: stop here. *)
              Ok (List.rev acc))
      | Ok h when h.dh_kind <> Dialect_doc -> (
          c.c_pos <- h.dh_payload_end;
          let d =
            Diag.error
              ~loc:(Loc.point (Loc.start_of_file file))
              "bytecode document holds an IR module, expected dialect \
               definitions"
          in
          match fail_or acc d with Error d -> Error d | Ok acc -> go acc)
      | Ok h -> (
          let dc = { c with c_end = h.dh_payload_end } in
          match
            Diag.protect_any (fun () ->
                let strs = read_strtab dc in
                let _, attr_at = read_pool dc strs in
                let n = read_count dc "dialect" in
                read_list n (fun _ -> decode_dialect dc strs attr_at))
          with
          | Ok dls ->
              c.c_pos <- h.dh_payload_end;
              go (List.rev_append dls acc)
          | Error d -> (
              c.c_pos <- h.dh_payload_end;
              match fail_or acc d with
              | Error d -> Error d
              | Ok acc -> go acc))
  in
  go []

(* ------------------------------------------------------------------ *)
(* Structural equality (round-trip oracles)                           *)
(* ------------------------------------------------------------------ *)

module Equal = struct
  (* Module equality up to value/block identity and locations: values and
     blocks are paired by definition position (two passes, so forward
     operand references compare correctly), everything else structurally. *)

  exception Differ

  let pair tbl a b =
    match Hashtbl.find_opt tbl a with
    | Some b' -> if b' <> b then raise Differ
    | None -> Hashtbl.add tbl a b

  let module_eq ops1 ops2 =
    let vmap = Hashtbl.create 64 in
    let bmap = Hashtbl.create 16 in
    let rec pair_defs (o1 : Graph.op) (o2 : Graph.op) =
      if Array.length o1.op_results <> Array.length o2.op_results then
        raise Differ;
      Array.iteri
        (fun i (r : Graph.value) ->
          pair vmap r.v_id o2.op_results.(i).Graph.v_id)
        o1.op_results;
      if List.length o1.regions <> List.length o2.regions then raise Differ;
      List.iter2
        (fun (r1 : Graph.region) (r2 : Graph.region) ->
          let bs1 = Graph.Region.blocks r1 and bs2 = Graph.Region.blocks r2 in
          if List.length bs1 <> List.length bs2 then raise Differ;
          List.iter2
            (fun (b1 : Graph.block) (b2 : Graph.block) ->
              pair bmap b1.blk_id b2.blk_id;
              if Array.length b1.blk_args <> Array.length b2.blk_args then
                raise Differ;
              Array.iteri
                (fun i (a : Graph.value) ->
                  pair vmap a.v_id b2.blk_args.(i).Graph.v_id)
                b1.blk_args;
              let ops1 = Graph.Block.ops b1 and ops2 = Graph.Block.ops b2 in
              if List.length ops1 <> List.length ops2 then raise Differ;
              List.iter2 pair_defs ops1 ops2)
            bs1 bs2)
        o1.regions o2.regions
    in
    let rec check (o1 : Graph.op) (o2 : Graph.op) =
      if o1.op_name <> o2.op_name then raise Differ;
      if Array.length o1.op_operands <> Array.length o2.op_operands then
        raise Differ;
      Array.iteri
        (fun i (u : Graph.use) ->
          let v2 = o2.op_operands.(i).Graph.u_value in
          match Hashtbl.find_opt vmap u.u_value.v_id with
          | Some id2 -> if id2 <> v2.v_id then raise Differ
          | None -> raise Differ)
        o1.op_operands;
      Array.iteri
        (fun i (r : Graph.value) ->
          if not (Attr.equal_ty r.v_ty o2.op_results.(i).Graph.v_ty) then
            raise Differ)
        o1.op_results;
      if
        not
          (List.length o1.attrs = List.length o2.attrs
          && List.for_all2
               (fun (k1, a1) (k2, a2) -> k1 = k2 && Attr.equal a1 a2)
               o1.attrs o2.attrs)
      then raise Differ;
      if List.length o1.successors <> List.length o2.successors then
        raise Differ;
      List.iter2
        (fun (b1 : Graph.block) (b2 : Graph.block) ->
          match Hashtbl.find_opt bmap b1.blk_id with
          | Some id2 -> if id2 <> b2.blk_id then raise Differ
          | None -> raise Differ)
        o1.successors o2.successors;
      List.iter2
        (fun (r1 : Graph.region) (r2 : Graph.region) ->
          List.iter2
            (fun (b1 : Graph.block) (b2 : Graph.block) ->
              Array.iteri
                (fun i (a : Graph.value) ->
                  if
                    not
                      (Attr.equal_ty a.v_ty b2.Graph.blk_args.(i).Graph.v_ty)
                  then raise Differ)
                b1.Graph.blk_args;
              List.iter2 check (Graph.Block.ops b1) (Graph.Block.ops b2))
            (Graph.Region.blocks r1) (Graph.Region.blocks r2))
        o1.regions o2.regions
    in
    try
      if List.length ops1 <> List.length ops2 then raise Differ;
      List.iter2 pair_defs ops1 ops2;
      List.iter2 check ops1 ops2;
      true
    with Differ -> false

  (* Dialect equality up to locations and the surface AST. *)

  let rec constraint_eq (a : C.t) (b : C.t) =
    let all l1 l2 =
      List.length l1 = List.length l2 && List.for_all2 constraint_eq l1 l2
    in
    let params_eq p1 p2 =
      match (p1, p2) with
      | None, None -> true
      | Some p1, Some p2 -> all p1 p2
      | _ -> false
    in
    match (a, b) with
    | C.Any, C.Any
    | C.Any_type, C.Any_type
    | C.Any_attr, C.Any_attr
    | C.String_param, C.String_param
    | C.Symbol_param, C.Symbol_param
    | C.Bool_param, C.Bool_param
    | C.Location_param, C.Location_param
    | C.Type_id_param, C.Type_id_param
    | C.Array_any, C.Array_any ->
        true
    | C.Eq x, C.Eq y -> Attr.equal x y
    | C.Base_type t1, C.Base_type t2 ->
        t1.dialect = t2.dialect && t1.name = t2.name
        && params_eq t1.params t2.params
    | C.Base_attr t1, C.Base_attr t2 ->
        t1.dialect = t2.dialect && t1.name = t2.name
        && params_eq t1.params t2.params
    | C.Int_param k1, C.Int_param k2 -> k1 = k2
    | C.Float_param k1, C.Float_param k2 -> k1 = k2
    | C.Enum_param e1, C.Enum_param e2 ->
        e1.dialect = e2.dialect && e1.enum = e2.enum
    | C.Array_of c1, C.Array_of c2
    | C.Not c1, C.Not c2
    | C.Variadic c1, C.Variadic c2
    | C.Optional c1, C.Optional c2 ->
        constraint_eq c1 c2
    | C.Array_exact l1, C.Array_exact l2
    | C.Any_of l1, C.Any_of l2
    | C.And l1, C.And l2 ->
        all l1 l2
    | C.Var v1, C.Var v2 ->
        v1.v_name = v2.v_name && constraint_eq v1.v_constraint v2.v_constraint
    | C.Native n1, C.Native n2 ->
        n1.name = n2.name && n1.snippets = n2.snippets
        && constraint_eq n1.base n2.base
    | C.Native_param p1, C.Native_param p2 ->
        p1.name = p2.name && p1.class_name = p2.class_name
    | _ -> false

  let slot_eq (s1 : Resolve.slot) (s2 : Resolve.slot) =
    s1.s_name = s2.s_name && constraint_eq s1.s_constraint s2.s_constraint

  let slots_eq l1 l2 = List.length l1 = List.length l2 && List.for_all2 slot_eq l1 l2

  let typedef_eq (t1 : Resolve.typedef) (t2 : Resolve.typedef) =
    t1.td_name = t2.td_name && t1.td_summary = t2.td_summary
    && t1.td_cpp = t2.td_cpp
    && slots_eq t1.td_params t2.td_params

  let region_eq (r1 : Resolve.region) (r2 : Resolve.region) =
    r1.reg_name = r2.reg_name
    && r1.reg_terminator = r2.reg_terminator
    && slots_eq r1.reg_args r2.reg_args

  let op_eq (o1 : Resolve.op) (o2 : Resolve.op) =
    o1.op_name = o2.op_name && o1.op_summary = o2.op_summary
    && List.length o1.op_vars = List.length o2.op_vars
    && List.for_all2
         (fun (v1 : C.var) (v2 : C.var) ->
           v1.v_name = v2.v_name
           && constraint_eq v1.v_constraint v2.v_constraint)
         o1.op_vars o2.op_vars
    && slots_eq o1.op_operands o2.op_operands
    && slots_eq o1.op_results o2.op_results
    && slots_eq o1.op_attributes o2.op_attributes
    && List.length o1.op_regions = List.length o2.op_regions
    && List.for_all2 region_eq o1.op_regions o2.op_regions
    && o1.op_successors = o2.op_successors
    && o1.op_format = o2.op_format
    && o1.op_cpp = o2.op_cpp

  let enum_eq (e1 : Ast.enum_def) (e2 : Ast.enum_def) =
    e1.e_name = e2.e_name && e1.e_cases = e2.e_cases

  let dialect_eq (d1 : Resolve.dialect) (d2 : Resolve.dialect) =
    let all f l1 l2 = List.length l1 = List.length l2 && List.for_all2 f l1 l2 in
    d1.dl_name = d2.dl_name
    && all typedef_eq d1.dl_types d2.dl_types
    && all typedef_eq d1.dl_attrs d2.dl_attrs
    && all op_eq d1.dl_ops d2.dl_ops
    && all enum_eq d1.dl_enums d2.dl_enums
end
