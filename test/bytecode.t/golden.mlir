%c = "cmath.constant"() {value = 2.0 : f32} : () -> !cmath.complex<f32>
%m = "cmath.mul"(%c, %c) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
%n = "cmath.norm"(%m) : (!cmath.complex<f32>) -> f32

// -----

%d = "cmath.constant"() {value = 1.5 : f64} : () -> !cmath.complex<f64>
%s = "cmath.mul"(%d, %d) : (!cmath.complex<f64>, !cmath.complex<f64>) -> !cmath.complex<f64>
