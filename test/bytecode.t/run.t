Golden-fixture gate and frontend uniformity for the bytecode subsystem.

The committed golden.irdlbc was produced by the writer at format version 1.
Re-emitting golden.mlir must reproduce it byte for byte: a mismatch means
the wire format changed without a version bump, or the writer lost its
emit determinism — either is a format break to fix, not an expectation to
update. (Bump the version, regenerate the fixture, and keep a reader for
the old version when the format does change intentionally.)

  $ irdl-opt --cmath --split-input-file --emit-bytecode out.irdlbc golden.mlir
  $ cmp out.irdlbc golden.irdlbc && echo byte-identical
  byte-identical

Load + re-emit is also byte-exact — the reader materializes exactly what
the writer serialized, and value numbering is deterministic:

  $ irdl-opt --cmath --split-input-file --emit-bytecode reemit.irdlbc golden.irdlbc
  $ cmp reemit.irdlbc golden.irdlbc && echo byte-identical
  byte-identical

Loading bytecode prints the same text as processing the source directly
(the format is sniffed by magic, no flag needed):

  $ irdl-opt --cmath --split-input-file golden.mlir > from_text.txt
  $ irdl-opt --cmath --split-input-file golden.irdlbc > from_bc.txt
  $ cmp from_text.txt from_bc.txt && echo identical
  identical
  $ cat from_bc.txt
  %0 = "cmath.constant"() {value = 2.0 : f32} : () -> (!cmath.complex<f32>)
  %1 = cmath.mul %0, %0 : f32
  %2 = cmath.norm %1 : f32
  // -----
  %0 = "cmath.constant"() {value = 1.5 : f64} : () -> (!cmath.complex<f64>)
  %1 = cmath.mul %0, %0 : f64

Bytecode on stdin: the Source peeks the magic-sized prefix and pushes it
back, so sniffing never needs a seekable stream:

  $ cat golden.irdlbc | irdl-opt --cmath --split-input-file - | cmp - from_bc.txt && echo identical
  identical

The parallel and materializing frontends consume bytecode through the same
Source, byte-identically:

  $ irdl-opt --cmath --split-input-file -j 2 golden.irdlbc | cmp - from_bc.txt && echo identical
  identical
  $ irdl-opt --cmath --split-input-file --no-streaming golden.irdlbc | cmp - from_bc.txt && echo identical
  identical

--load-bytecode turns the silent fall-back to the text parser into an
error for pipelines that expect pre-compiled input:

  $ irdl-opt --cmath --load-bytecode golden.mlir
  golden.mlir:1:1: error: --load-bytecode: input is not IRDL bytecode (bad magic)
  [1]

Dialect packs: --emit-dialect-bytecode serializes the resolved registry,
and -d warm-starts from the pack (no IRDL parsing or resolution) with
identical verification behavior:

  $ irdl-opt --cmath --emit-dialect-bytecode pack.irdlbc - < /dev/null > /dev/null
  $ irdl-opt -d pack.irdlbc --split-input-file golden.mlir | cmp - from_text.txt && echo identical
  identical

Corrupted inputs produce located diagnostics, never a crash. Truncation:

  $ head -c 40 golden.irdlbc > trunc.irdlbc
  $ irdl-opt --cmath trunc.irdlbc
  trunc.irdlbc:1:1: error: malformed bytecode: truncated document (payload of 134 bytes, 28 remain) at byte 12
  [1]

Version skew (version byte patched to 99) is rejected up front with the
supported range, the compatibility contract of the format header:

  $ head -c 8 golden.irdlbc > skew.irdlbc
  $ printf '\143' >> skew.irdlbc
  $ tail -c +10 golden.irdlbc >> skew.irdlbc
  $ irdl-opt --cmath skew.irdlbc
  skew.irdlbc:1:1: error: unsupported bytecode version 99 (this reader supports versions 1..1)
  [1]
