(** Tests for the support library: locations, diagnostics, lexing base. *)

open Irdl_support
open Util

let loc_advance () =
  let p = Loc.start_of_file "f" in
  let p = Loc.advance p 'a' in
  Alcotest.(check int) "col" 2 p.col;
  Alcotest.(check int) "line" 1 p.line;
  let p = Loc.advance p '\n' in
  Alcotest.(check int) "line after nl" 2 p.line;
  Alcotest.(check int) "col after nl" 1 p.col;
  Alcotest.(check int) "offset" 2 p.offset

let loc_merge () =
  let a = Loc.start_of_file "f" in
  let b = Loc.advance (Loc.advance a 'x') 'y' in
  let l = Loc.merge (Loc.point a) (Loc.point b) in
  Alcotest.(check int) "start" 0 l.start_pos.offset;
  Alcotest.(check int) "end" 2 l.end_pos.offset;
  (* merge is commutative *)
  let l' = Loc.merge (Loc.point b) (Loc.point a) in
  Alcotest.(check int) "start'" 0 l'.start_pos.offset;
  (* unknown absorbs *)
  let l'' = Loc.merge Loc.unknown (Loc.point b) in
  Alcotest.(check int) "unknown merge" 2 l''.start_pos.offset

let loc_pp () =
  let p = Loc.start_of_file "file.irdl" in
  Alcotest.(check string) "point" "file.irdl:1:1" (Loc.to_string (Loc.point p));
  Alcotest.(check bool) "unknown" true (Loc.is_unknown Loc.unknown);
  let q = Loc.advance (Loc.advance p 'a') 'b' in
  Alcotest.(check string) "span" "file.irdl:1:1-3"
    (Loc.to_string (Loc.span p q))

let diag_format () =
  let d = Diag.error "bad %s %d" "thing" 42 in
  Alcotest.(check string) "msg" "error: bad thing 42" (Diag.to_string d)

let diag_notes () =
  let d = Diag.error ~notes:[ (Loc.unknown, "see here") ] "top" in
  let s = Diag.to_string d in
  Alcotest.(check bool) "has note" true
    (String.length s > String.length "error: top")

let diag_protect () =
  (match Diag.protect (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "ok" 42 v
  | Error _ -> Alcotest.fail "expected Ok");
  match Diag.protect (fun () -> Diag.raise_error "boom %d" 1) with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error d -> Alcotest.(check string) "msg" "error: boom 1" (Diag.to_string d)

let diag_errorf () =
  match (Diag.errorf "x=%d" 3 : (unit, Diag.t) result) with
  | Error d -> Alcotest.(check string) "msg" "error: x=3" (Diag.to_string d)
  | Ok () -> Alcotest.fail "expected Error"

let sbuf_cursor () =
  let b = Sbuf.of_string "ab c" in
  Alcotest.(check (option char)) "peek" (Some 'a') (Sbuf.peek b);
  Alcotest.(check (option char)) "peek2" (Some 'b') (Sbuf.peek2 b);
  Alcotest.(check bool) "accept a" true (Sbuf.accept b 'a');
  Alcotest.(check bool) "accept z" false (Sbuf.accept b 'z');
  Alcotest.(check (option char)) "next" (Some 'b') (Sbuf.next b);
  Sbuf.skip_while b Sbuf.is_space;
  Alcotest.(check (option char)) "after space" (Some 'c') (Sbuf.peek b);
  Sbuf.advance b;
  Alcotest.(check bool) "eof" true (Sbuf.eof b);
  Alcotest.(check (option char)) "peek eof" None (Sbuf.peek b)

let sbuf_take_while () =
  let b = Sbuf.of_string "hello42!" in
  Alcotest.(check string) "ident" "hello42"
    (Sbuf.take_while b Sbuf.is_ident_char);
  Alcotest.(check (option char)) "rest" (Some '!') (Sbuf.peek b)

let sbuf_slice () =
  let b = Sbuf.of_string "abcdef" in
  let start = Sbuf.pos b in
  Sbuf.advance b;
  Sbuf.advance b;
  Sbuf.advance b;
  Alcotest.(check string) "slice" "abc" (Sbuf.slice b start (Sbuf.pos b))

let sbuf_classifiers () =
  Alcotest.(check bool) "digit" true (Sbuf.is_digit '7');
  Alcotest.(check bool) "not digit" false (Sbuf.is_digit 'a');
  Alcotest.(check bool) "ident start _" true (Sbuf.is_ident_start '_');
  Alcotest.(check bool) "ident start 1" false (Sbuf.is_ident_start '1');
  Alcotest.(check bool) "ident char $" true (Sbuf.is_ident_char '$');
  Alcotest.(check bool) "space tab" true (Sbuf.is_space '\t')

(* ---------------- monotonic clock ---------------- *)

let monotonic_basics () =
  let t0 = Monotonic.now_ns () in
  let t1 = Monotonic.now_ns () in
  Alcotest.(check bool) "never goes backwards" true (Int64.compare t1 t0 >= 0);
  Alcotest.(check bool) "nonzero epoch" true (Int64.compare t0 0L > 0);
  Alcotest.(check int64) "add_ms is nanoseconds" (Int64.add t0 5_000_000L)
    (Monotonic.add_ms t0 5);
  Alcotest.(check bool) "elapsed_s non-negative" true
    (Monotonic.elapsed_s t0 >= 0.)

(* ---------------- resource budgets ---------------- *)

let limits_meet () =
  let a = Limits.create ~max_ops:100 ~max_depth:4 () in
  let b = Limits.create ~max_ops:10 ~max_payload_bytes:1000 () in
  let m = Limits.meet a b in
  Alcotest.(check int) "strictest ops" 10 m.Limits.max_ops;
  Alcotest.(check int) "unlimited side yields" 4 m.Limits.max_depth;
  Alcotest.(check int) "bytes from b" 1000 m.Limits.max_payload_bytes;
  let u = Limits.meet Limits.unlimited Limits.unlimited in
  Alcotest.(check bool) "unlimited meets to unlimited" true
    (u = Limits.unlimited);
  (* Negative inputs clamp to "unlimited", never to a negative cap. *)
  let c = Limits.create ~max_ops:(-5) () in
  Alcotest.(check int) "negative clamps to 0" 0 c.Limits.max_ops

let budget_code = function
  | Diag.Fatal_exn d -> d.Diag.code
  | e -> Alcotest.failf "expected Fatal_exn, got %s" (Printexc.to_string e)

let limits_ops_budget () =
  let b = Limits.budget (Limits.create ~max_ops:2 ()) in
  let loc = Loc.point (Loc.start_of_file "f") in
  Limits.tick_op b ~loc;
  Limits.tick_op b ~loc;
  (match Limits.tick_op b ~loc with
  | () -> Alcotest.fail "third op must blow the budget"
  | exception e ->
      Alcotest.(check (option string))
        "resource_exhausted code"
        (Some Limits.resource_exhausted) (budget_code e));
  Alcotest.(check int) "ops counted" 3 (Limits.ops_used b)

let limits_depth_budget () =
  let b = Limits.budget (Limits.create ~max_depth:2 ()) in
  let loc = Loc.point (Loc.start_of_file "f") in
  Limits.enter_region b ~loc;
  Limits.enter_region b ~loc;
  (match Limits.enter_region b ~loc with
  | () -> Alcotest.fail "third level must blow the budget"
  | exception e ->
      Alcotest.(check (option string))
        "resource_exhausted code"
        (Some Limits.resource_exhausted) (budget_code e));
  (* Leaving restores headroom: the budget tracks depth, not a count. *)
  Limits.leave_region b;
  Limits.enter_region b ~loc

let limits_deadline () =
  let expired = { Limits.unlimited with Limits.deadline_ns = 1L } in
  let b = Limits.budget expired in
  (match Limits.tick_op b ~loc:(Loc.point (Loc.start_of_file "f")) with
  | () -> Alcotest.fail "expired deadline must abort"
  | exception e ->
      Alcotest.(check (option string))
        "deadline_exceeded code"
        (Some Limits.deadline_exceeded) (budget_code e));
  (* A generous deadline does not fire. *)
  let later = Limits.with_deadline_ms Limits.unlimited 60_000 in
  let b = Limits.budget later in
  Limits.tick_op b ~loc:(Loc.point (Loc.start_of_file "f"));
  Alcotest.(check bool) "budget codes recognized" true
    (Limits.is_budget_code (Some Limits.resource_exhausted)
    && Limits.is_budget_code (Some Limits.deadline_exceeded)
    && (not (Limits.is_budget_code (Some "other")))
    && not (Limits.is_budget_code None))

(* Fatal diagnostics escape [protect] (fail-soft recovery must not swallow
   a blown budget) but are converted by [protect_any] (the outermost
   guard), keeping their structured code. *)
let diag_fatal_protection () =
  (match Diag.protect (fun () -> Diag.raise_fatal ~code:"c" "boom") with
  | _ -> Alcotest.fail "protect must not catch Fatal_exn"
  | exception Diag.Fatal_exn d ->
      Alcotest.(check (option string)) "code survives" (Some "c") d.Diag.code);
  match Diag.protect_any (fun () -> Diag.raise_fatal ~code:"c" "boom") with
  | Error d ->
      Alcotest.(check (option string)) "protect_any converts" (Some "c")
        d.Diag.code
  | Ok _ -> Alcotest.fail "protect_any must return the error"

(* ---------------- fault injection ---------------- *)

let failpoints_cadence () =
  Fun.protect ~finally:Failpoints.clear @@ fun () ->
  Alcotest.(check bool) "arm" true (Result.is_ok (Failpoints.configure "x:3"));
  Alcotest.(check bool) "active" true (Failpoints.active ());
  let fired = ref 0 in
  for _ = 1 to 9 do
    match Failpoints.hit "x" with
    | () -> ()
    | exception Failpoints.Injected "x" -> incr fired
    | exception Failpoints.Injected other ->
        Alcotest.failf "wrong seam: %s" other
  done;
  Alcotest.(check int) "every 3rd hit fires" 3 !fired;
  Alcotest.(check int) "injections observable" 3
    (Failpoints.injected_count "x");
  (* Unarmed seams pass through; clearing disarms. *)
  Failpoints.hit "y";
  Failpoints.clear ();
  Failpoints.hit "x";
  Alcotest.(check bool) "inactive after clear" false (Failpoints.active ())

let failpoints_configure_errors () =
  Fun.protect ~finally:Failpoints.clear @@ fun () ->
  Alcotest.(check bool) "ok spec" true
    (Result.is_ok (Failpoints.configure "parse,verify:2"));
  let armed_before = Failpoints.seams () in
  Alcotest.(check bool) "bad cadence rejected" true
    (Result.is_error (Failpoints.configure "parse:0"));
  Alcotest.(check bool) "bad entry rejected" true
    (Result.is_error (Failpoints.configure "a:b:c"));
  (* A rejected spec keeps the previous configuration. *)
  Alcotest.(check int) "previous config kept"
    (List.length armed_before)
    (List.length (Failpoints.seams ()));
  Alcotest.(check bool) "empty spec disarms" true
    (Result.is_ok (Failpoints.configure ""));
  Alcotest.(check bool) "disarmed" false (Failpoints.active ())

(* The seams are live: an armed parse seam poisons parsing with a
   structured injected_fault diagnostic instead of crashing. *)
let failpoints_parse_seam () =
  Fun.protect ~finally:Failpoints.clear @@ fun () ->
  Alcotest.(check bool) "arm parse" true
    (Result.is_ok (Failpoints.configure "parse"));
  let ctx = Irdl_ir.Context.create () in
  match Irdl_ir.Parser.parse_ops ctx "%a = \"t.x\"() : () -> (i32)\n" with
  | Ok _ -> Alcotest.fail "armed parse seam must fail the parse"
  | Error d ->
      Alcotest.(check (option string))
        "structured code" (Some "injected_fault") d.Diag.code

let suite =
  [
    tc "loc: advance tracks lines and columns" loc_advance;
    tc "monotonic: clock basics" monotonic_basics;
    tc "limits: meet is pointwise strictest" limits_meet;
    tc "limits: op budget aborts with code" limits_ops_budget;
    tc "limits: region depth budget" limits_depth_budget;
    tc "limits: deadlines" limits_deadline;
    tc "diag: fatal escapes protect, not protect_any" diag_fatal_protection;
    tc "failpoints: cadence and counters" failpoints_cadence;
    tc "failpoints: malformed specs rejected" failpoints_configure_errors;
    tc "failpoints: parse seam is live" failpoints_parse_seam;
    tc "loc: merge covers both spans" loc_merge;
    tc "loc: printing" loc_pp;
    tc "diag: formatted message" diag_format;
    tc "diag: notes attach" diag_notes;
    tc "diag: protect catches raise_error" diag_protect;
    tc "diag: errorf returns Error" diag_errorf;
    tc "sbuf: cursor operations" sbuf_cursor;
    tc "sbuf: take_while" sbuf_take_while;
    tc "sbuf: slice between positions" sbuf_slice;
    tc "sbuf: character classifiers" sbuf_classifiers;
  ]
