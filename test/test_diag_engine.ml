(** The diagnostic engine: counting, capping, handlers, sinks, snippet
    rendering, and the --split-input-file / --verify-diagnostics harness. *)

open Irdl_support
open Util

let pos file line col offset = { Loc.file; line; col; offset }

let loc_at ?(file = "t.mlir") line col width off =
  Loc.span (pos file line col off) (pos file line (col + width) (off + width))

(* ---------------- engine bookkeeping ---------------- *)

let counts () =
  let e = Diag.Engine.create () in
  Diag.Engine.emit e (Diag.error "boom");
  Diag.Engine.emit e (Diag.warning "hm");
  Diag.Engine.emit e (Diag.make ~severity:Diag.Note "fyi");
  Diag.Engine.emit e (Diag.error "boom again");
  Alcotest.(check int) "errors" 2 (Diag.Engine.error_count e);
  Alcotest.(check int) "warnings" 1 (Diag.Engine.warning_count e);
  Alcotest.(check int) "notes" 1 (Diag.Engine.note_count e);
  Alcotest.(check bool) "has_errors" true (Diag.Engine.has_errors e);
  Alcotest.(check (list string)) "emission order"
    [ "boom"; "hm"; "fyi"; "boom again" ]
    (List.map (fun (d : Diag.t) -> d.message) (Diag.Engine.diagnostics e))

let error_cap () =
  let e = Diag.Engine.create ~max_errors:2 () in
  Diag.Engine.emit e (Diag.error "one");
  Alcotest.(check bool) "below cap" false (Diag.Engine.limit_reached e);
  Diag.Engine.emit e (Diag.error "two");
  Alcotest.(check bool) "at cap" true (Diag.Engine.limit_reached e);
  Diag.Engine.emit e (Diag.error "three");
  Diag.Engine.emit e (Diag.warning "still recorded");
  Alcotest.(check int) "errors capped" 2 (Diag.Engine.error_count e);
  Alcotest.(check int) "suppressed" 1 (Diag.Engine.suppressed_count e);
  Alcotest.(check int) "warnings pass the cap" 1
    (Diag.Engine.warning_count e);
  Alcotest.(check int) "recorded list excludes suppressed" 3
    (List.length (Diag.Engine.diagnostics e))

let handlers () =
  let e = Diag.Engine.create () in
  let seen = ref [] in
  Diag.Engine.add_handler e (fun d -> seen := ("a:" ^ d.message) :: !seen);
  Diag.Engine.add_handler e (fun d -> seen := ("b:" ^ d.message) :: !seen);
  Diag.Engine.emit e (Diag.error "x");
  Alcotest.(check (list string)) "both handlers, registration order"
    [ "b:x"; "a:x" ] !seen

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let json_sink () =
  let e = Diag.Engine.create () in
  Diag.Engine.emit e (Diag.error ~loc:(loc_at 3 7 4 20) "bad \"thing\"");
  Diag.Engine.emit e (Diag.warning "odd");
  let json = Diag.Engine.to_json e in
  List.iter
    (fun needle ->
      if not (contains json needle) then
        Alcotest.failf "JSON %s lacks %S" json needle)
    [ {|"errors": 1|}; {|"warnings": 1|}; {|"file": "t.mlir"|};
      {|"line": 3|}; {|bad \"thing\"|}; {|"severity": "warning"|} ]

(* ---------------- snippet rendering ---------------- *)

let snippet () =
  let src = "first line\nsecond line\nthird" in
  Diag.Sources.register ~file:"snip.x" src;
  let d = Diag.error ~loc:(loc_at ~file:"snip.x" 2 8 4 18) "bad suffix" in
  let rendered = Fmt.str "%a" Diag.pp_rendered d in
  Alcotest.(check string) "caret under the span"
    "snip.x:2:8-12: error: bad suffix\n\
    \  2 | second line\n\
    \    |        ^~~~" rendered

let snippet_unknown_source () =
  let d = Diag.error ~loc:(loc_at ~file:"not-registered.x" 1 1 3 0) "eh" in
  Alcotest.(check string) "falls back to the plain header"
    (Fmt.str "%a" Diag.pp d)
    (Fmt.str "%a" Diag.pp_rendered d)

(* ---------------- split-input-file ---------------- *)

let split_basic () =
  let src = "a1\na2\n// -----\nb1\n" in
  match Diag_harness.split_input src with
  | [ c1; c2 ] ->
      Alcotest.(check string) "first chunk" "a1\na2" c1;
      Alcotest.(check string) "second chunk keeps line numbers" "\n\n\nb1\n" c2
  | cs -> Alcotest.failf "expected 2 chunks, got %d" (List.length cs)

let split_none () =
  let src = "only\nchunk\n" in
  Alcotest.(check (list string)) "untouched" [ src ]
    (Diag_harness.split_input src)

(* ---------------- expectation scanning and checking ---------------- *)

let scan () =
  let src =
    "op1\n\
     // expected-error@below {{bad op}}\n\
     op2  // expected-warning {{shady}}\n\
     // expected-error@+2 {{later}}\n\
     \n\
     op3\n"
  in
  let exps, errs = Diag_harness.scan_expectations ~file:"f.mlir" src in
  Alcotest.(check int) "no harness errors" 0 (List.length errs);
  Alcotest.(check (list (pair int string)))
    "lines and substrings"
    [ (3, "bad op"); (3, "shady"); (6, "later") ]
    (List.map
       (fun (e : Diag_harness.expectation) -> (e.exp_line, e.exp_substr))
       exps)

let scan_malformed () =
  let _, errs =
    Diag_harness.scan_expectations ~file:"f.mlir"
      "// expected-error@wat {{x}}\n// expected-error {{unterminated\n"
  in
  Alcotest.(check int) "both reported" 2 (List.length errs)

let check_matching () =
  let src = "// expected-error@below {{undefined}}\nuse\n" in
  let exps, _ = Diag_harness.scan_expectations ~file:"f.mlir" src in
  let produced = [ Diag.error ~loc:(loc_at ~file:"f.mlir" 2 1 3 0) "use of undefined value" ] in
  Alcotest.(check int) "fulfilled" 0
    (List.length (Diag_harness.check ~expectations:exps produced));
  (* Same expectation, nothing produced: one failure. *)
  let exps, _ = Diag_harness.scan_expectations ~file:"f.mlir" src in
  (match Diag_harness.check ~expectations:exps [] with
  | [ d ] ->
      check_err_containing "unfulfilled" "was not produced" (Error d)
  | ds -> Alcotest.failf "expected 1 failure, got %d" (List.length ds));
  (* Unexpected diagnostic: one failure naming it. *)
  (match Diag_harness.check ~expectations:[] produced with
  | [ d ] -> check_err_containing "unexpected" "unexpected error" (Error d)
  | ds -> Alcotest.failf "expected 1 failure, got %d" (List.length ds))

let check_severity_mismatch () =
  let exps, _ =
    Diag_harness.scan_expectations ~file:"f.mlir"
      "// expected-warning@below {{oops}}\nx\n"
  in
  let produced = [ Diag.error ~loc:(loc_at ~file:"f.mlir" 2 1 1 0) "oops" ] in
  Alcotest.(check int) "error does not satisfy expected-warning" 2
    (List.length (Diag_harness.check ~expectations:exps produced))

let suite =
  [
    tc "severity counts and order" counts;
    tc "max-errors cap suppresses" error_cap;
    tc "handlers run in order" handlers;
    tc "JSON sink" json_sink;
    tc "caret snippet rendering" snippet;
    tc "snippet falls back without source" snippet_unknown_source;
    tc "split-input-file chunks pad line numbers" split_basic;
    tc "split-input-file without separator" split_none;
    tc "expectation scanning" scan;
    tc "malformed annotations are harness errors" scan_malformed;
    tc "expectation checking" check_matching;
    tc "severity must match" check_severity_mismatch;
  ]
