The streaming frontend must be byte-identical to the materializing parser:
same stdout, same stderr (diagnostic order included), same exit code, same
--diag-json. Streaming is the default whenever no pass pipeline runs;
--no-streaming forces the materializing oracle for comparison.

A 5-chunk input mixing valid chunks, a verify error, a parse error, and a
top-level forward reference (which the session must hold back and resolve):

  $ cat > input.mlir <<'EOF'
  > %c = "cmath.constant"() {value = 2.0 : f32} : () -> !cmath.complex<f32>
  > %m = "cmath.mul"(%c, %c) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
  > 
  > // -----
  > 
  > %bad = "cmath.norm"() : () -> f32
  > 
  > // -----
  > 
  > %p = "cmath.mul"(%x, : (i32) -> i32
  > 
  > // -----
  > 
  > %n = "cmath.norm"(%c2) : (!cmath.complex<f64>) -> f64
  > %c2 = "cmath.constant"() {value = 1.0 : f64} : () -> !cmath.complex<f64>
  > 
  > // -----
  > 
  > %ok = "cmath.constant"() {value = 0.5 : f32} : () -> !cmath.complex<f32>
  > EOF

  $ irdl-opt --cmath --split-input-file --streaming --diag-json ds.json input.mlir \
  >   >outs.txt 2>errs.txt; echo "exit: $?"
  exit: 1
  $ irdl-opt --cmath --split-input-file --no-streaming --diag-json dm.json input.mlir \
  >   >outm.txt 2>errm.txt; echo "exit: $?"
  exit: 1

  $ cmp outs.txt outm.txt && echo "stdout identical"
  stdout identical
  $ cmp errs.txt errm.txt && echo "stderr identical"
  stderr identical
  $ cmp ds.json dm.json && echo "diag-json identical"
  diag-json identical

The shared reference output (parse diagnostics in parse order, verify
diagnostics merged after them, surviving chunks re-printed):

  $ cat errs.txt
  input.mlir:6:1-5: error: 'cmath.norm' expects 1 operands, got 0
    6 | %bad = "cmath.norm"() : () -> f32
      | ^~~~
  input.mlir:10:22-23: error: at ':': expected SSA value name
    10 | %p = "cmath.mul"(%x, : (i32) -> i32
       |                      ^
  input.mlir:10:18-20: error: use of undefined value %x
    10 | %p = "cmath.mul"(%x, : (i32) -> i32
       |                  ^~
  $ cat outs.txt
  %0 = "cmath.constant"() {value = 2.0 : f32} : () -> (!cmath.complex<f32>)
  %1 = cmath.mul %0, %0 : f32
  // -----
  %0 = cmath.norm %1 : f64
  %1 = "cmath.constant"() {value = 1.0 : f64} : () -> (!cmath.complex<f64>)
  // -----
  %0 = "cmath.constant"() {value = 0.5 : f32} : () -> (!cmath.complex<f32>)

Streaming composes with --jobs; still byte-identical:

  $ irdl-opt --cmath --split-input-file --streaming --jobs 4 input.mlir \
  >   >outj.txt 2>errj.txt; echo "exit: $?"
  exit: 1
  $ cmp outs.txt outj.txt && cmp errs.txt errj.txt && echo "identical"
  identical

And with --batch (one resident source at a time on the sequential path):

  $ mkdir corpus
  $ cat > corpus/a.mlir <<'EOF'
  > %c = "cmath.constant"() {value = 3.0 : f32} : () -> !cmath.complex<f32>
  > EOF
  $ cat > corpus/b.mlir <<'EOF'
  > %x = "cmath.norm"() : () -> f32
  > EOF
  $ irdl-opt --cmath --batch corpus --streaming >bs.txt 2>bse.txt; echo "exit: $?"
  exit: 2
  $ irdl-opt --cmath --batch corpus --no-streaming >bm.txt 2>bme.txt; echo "exit: $?"
  exit: 2
  $ cmp bs.txt bm.txt && cmp bse.txt bme.txt && echo "batch identical"
  batch identical

--verify-diagnostics runs through the streaming path too:

  $ cat > annotated.mlir <<'EOF'
  > // expected-error@below {{expects 1 operands}}
  > %bad = "cmath.norm"() : () -> f32
  > EOF
  $ irdl-opt --cmath --verify-diagnostics --streaming annotated.mlir; echo "exit: $?"
  exit: 0
  $ irdl-opt --cmath --verify-diagnostics --no-streaming annotated.mlir; echo "exit: $?"
  exit: 0

--verify-stats reports the cache counters of materializing-semantics work
(streaming would eagerly verify ops of chunks that later parse-fail), so it
forces the materializing path; output identical either way:

  $ irdl-opt --cmath --split-input-file --verify-stats input.mlir \
  >   >vss.txt 2>vsse.txt; echo "exit: $?"
  exit: 1
  $ irdl-opt --cmath --split-input-file --verify-stats --no-streaming input.mlir \
  >   >vsm.txt 2>vsme.txt; echo "exit: $?"
  exit: 1
  $ cmp vss.txt vsm.txt && cmp vsse.txt vsme.txt && echo "verify-stats identical"
  verify-stats identical
  $ grep -c "verification cache" vsse.txt
  1

A pass pipeline needs the whole module resident: --streaming warns (debug
log) and falls back, producing the same result as the materializing path:

  $ irdl-opt --cmath --pass-pipeline cse --streaming input.mlir --split-input-file \
  >   >ps.txt 2>/dev/null; echo "exit: $?"
  exit: 1
  $ irdl-opt --cmath --pass-pipeline cse --no-streaming input.mlir --split-input-file \
  >   >pm.txt 2>/dev/null; echo "exit: $?"
  exit: 1
  $ cmp ps.txt pm.txt && echo "pipeline fallback identical"
  pipeline fallback identical

The two force flags are mutually exclusive:

  $ irdl-opt --cmath --streaming --no-streaming input.mlir
  irdl-opt: --streaming and --no-streaming are mutually exclusive
  [1]
