A downstream reader that stops early (| head) must not kill irdl-opt
with SIGPIPE or leave a broken-pipe backtrace: the write failure is a
clean early exit.

Enough output to overflow the pipe buffer after head stops reading:

  $ i=0; while [ $i -lt 5000 ]; do echo "%v$i = \"t.op\"() : () -> (i32)"; i=$((i+1)); done > big.mlir

  $ (irdl-opt --cmath big.mlir 2> pipe.err; echo $? > code) | head -n 1 > /dev/null
  $ cat code
  0
  $ cat pipe.err

The same through the streaming path, where writes interleave with
parsing:

  $ (irdl-opt --cmath --streaming --split-input-file big.mlir 2> pipe2.err; echo $? > code2) | head -n 1 > /dev/null
  $ cat code2
  0
  $ cat pipe2.err
