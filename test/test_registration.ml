(** Tests for dynamic registration and the generated verifiers: arity,
    variadic segmentation, attributes, regions, successors, and IRDL-C++
    op hooks — the runtime analog of Listing 2. *)

open Irdl_ir
open Util

let mk_vals tys =
  List.map
    (fun ty -> Graph.Op.result (Graph.Op.create ~result_tys:[ ty ] "t.v") 0)
    tys

let dialect_with_ops src =
  let ctx, _ = load_dialect src in
  ctx

(* ---------------- arity and types ---------------- *)

let binary_src =
  {|Dialect d {
      Operation add {
        ConstraintVars (T: !AnyOf<!i32, !f32>)
        Operands (lhs: !T, rhs: !T)
        Results (r: !T)
      }
    }|}

let fixed_arity () =
  let ctx = dialect_with_ops binary_src in
  let v2 = mk_vals [ Attr.i32; Attr.i32 ] in
  verify_ok ctx (Graph.Op.create ~operands:v2 ~result_tys:[ Attr.i32 ] "d.add");
  verify_err ~containing:"expects 2 operands" ctx
    (Graph.Op.create ~operands:(mk_vals [ Attr.i32 ]) ~result_tys:[ Attr.i32 ]
       "d.add");
  verify_err ~containing:"expects 1 results" ctx
    (Graph.Op.create ~operands:v2 "d.add")

let constraint_var_equality () =
  let ctx = dialect_with_ops binary_src in
  verify_err ~containing:"already bound" ctx
    (Graph.Op.create
       ~operands:(mk_vals [ Attr.i32; Attr.f32 ])
       ~result_tys:[ Attr.i32 ] "d.add");
  (* result participates in the same environment *)
  verify_err ~containing:"already bound" ctx
    (Graph.Op.create
       ~operands:(mk_vals [ Attr.i32; Attr.i32 ])
       ~result_tys:[ Attr.f32 ] "d.add");
  (* var's own constraint enforced *)
  verify_err ~containing:"constraint variable T" ctx
    (Graph.Op.create
       ~operands:(mk_vals [ Attr.f64; Attr.f64 ])
       ~result_tys:[ Attr.f64 ] "d.add")

(* ---------------- variadic segmentation ---------------- *)

let variadic_src =
  {|Dialect d {
      Operation concat {
        Operands (first: !i32, rest: Variadic<!f32>)
        Results (r: !i32)
      }
      Operation opt {
        Operands (x: Optional<!i32>)
      }
      Operation multi {
        Operands (a: Variadic<!i32>, b: Variadic<!f32>)
      }
    }|}

let single_variadic_inferred () =
  let ctx = dialect_with_ops variadic_src in
  let mk n =
    Graph.Op.create
      ~operands:(mk_vals (Attr.i32 :: List.init n (fun _ -> Attr.f32)))
      ~result_tys:[ Attr.i32 ] "d.concat"
  in
  verify_ok ctx (mk 0);
  verify_ok ctx (mk 3);
  verify_err ~containing:"at least 1" ctx
    (Graph.Op.create ~operands:[] ~result_tys:[ Attr.i32 ] "d.concat");
  (* group elements are type-checked *)
  verify_err ctx
    (Graph.Op.create
       ~operands:(mk_vals [ Attr.i32; Attr.i32 ])
       ~result_tys:[ Attr.i32 ] "d.concat")

let optional_at_most_one () =
  let ctx = dialect_with_ops variadic_src in
  verify_ok ctx (Graph.Op.create "d.opt");
  verify_ok ctx (Graph.Op.create ~operands:(mk_vals [ Attr.i32 ]) "d.opt");
  verify_err ~containing:"optional" ctx
    (Graph.Op.create ~operands:(mk_vals [ Attr.i32; Attr.i32 ]) "d.opt")

let multi_variadic_needs_segments () =
  let ctx = dialect_with_ops variadic_src in
  let operands = mk_vals [ Attr.i32; Attr.f32; Attr.f32 ] in
  verify_err ~containing:"operandSegmentSizes" ctx
    (Graph.Op.create ~operands "d.multi");
  let seg sizes =
    ("operandSegmentSizes",
     Attr.array (List.map (fun n -> Attr.int (Int64.of_int n)) sizes))
  in
  verify_ok ctx (Graph.Op.create ~operands ~attrs:[ seg [ 1; 2 ] ] "d.multi");
  verify_err ~containing:"sums to" ctx
    (Graph.Op.create ~operands ~attrs:[ seg [ 1; 1 ] ] "d.multi");
  verify_err ~containing:"entries" ctx
    (Graph.Op.create ~operands ~attrs:[ seg [ 1; 1; 1 ] ] "d.multi");
  (* segmentation must also respect element types *)
  verify_err ctx (Graph.Op.create ~operands ~attrs:[ seg [ 2; 1 ] ] "d.multi")

let variadic_results () =
  let ctx =
    dialect_with_ops
      {|Dialect d { Operation f { Results (rs: Variadic<!i32>) } }|}
  in
  verify_ok ctx (Graph.Op.create "d.f");
  verify_ok ctx (Graph.Op.create ~result_tys:[ Attr.i32; Attr.i32 ] "d.f");
  verify_err ctx (Graph.Op.create ~result_tys:[ Attr.f32 ] "d.f")

let multi_variadic_results_need_segments () =
  let ctx =
    dialect_with_ops
      {|Dialect d {
          Operation g { Results (a: Variadic<!i32>, b: Variadic<!f32>) }
        }|}
  in
  let tys = [ Attr.i32; Attr.f32; Attr.f32 ] in
  verify_err ~containing:"resultSegmentSizes" ctx
    (Graph.Op.create ~result_tys:tys "d.g");
  let seg sizes =
    ("resultSegmentSizes",
     Attr.array (List.map (fun n -> Attr.int (Int64.of_int n)) sizes))
  in
  verify_ok ctx (Graph.Op.create ~result_tys:tys ~attrs:[ seg [ 1; 2 ] ] "d.g");
  (* segmentation must respect element types *)
  verify_err ctx
    (Graph.Op.create ~result_tys:tys ~attrs:[ seg [ 2; 1 ] ] "d.g")

(* ---------------- attributes ---------------- *)

let attrs_src =
  {|Dialect d {
      Operation c {
        Attributes (value: i32_attr, doc: Optional<string>)
      }
    }|}

let required_attrs () =
  let ctx = dialect_with_ops attrs_src in
  let value = ("value", Attr.int ~ty:Attr.i32 1L) in
  verify_ok ctx (Graph.Op.create ~attrs:[ value ] "d.c");
  verify_err ~containing:"requires attribute 'value'" ctx
    (Graph.Op.create "d.c");
  verify_err ~containing:"attribute 'value'" ctx
    (Graph.Op.create ~attrs:[ ("value", Attr.string "no") ] "d.c")

let optional_attrs () =
  let ctx = dialect_with_ops attrs_src in
  let value = ("value", Attr.int ~ty:Attr.i32 1L) in
  verify_ok ctx
    (Graph.Op.create ~attrs:[ value; ("doc", Attr.string "hi") ] "d.c");
  (* present but ill-typed optional attr is still an error *)
  verify_err ctx
    (Graph.Op.create ~attrs:[ value; ("doc", Attr.int 1L) ] "d.c");
  (* extra attributes are allowed, like MLIR's discardable attrs *)
  verify_ok ctx
    (Graph.Op.create ~attrs:[ value; ("extra", Attr.Unit) ] "d.c")

(* ---------------- regions and successors ---------------- *)

let region_count () =
  let ctx = cmath_ctx () in
  verify_err ~containing:"expects 1 regions" ctx
    (Graph.Op.create ~operands:(mk_vals [ Attr.i32; Attr.i32; Attr.i32 ])
       "cmath.range_loop")

let successor_count () =
  let ctx = cmath_ctx () in
  let cond = mk_vals [ Attr.i1 ] in
  (* detached op: structural check is skipped, successor count isn't *)
  verify_err ~containing:"expects 2 successors" ctx
    (Graph.Op.create ~operands:cond "cmath.conditional_branch")

let non_terminator_successors () =
  let ctx = cmath_ctx () in
  let blk1 = Graph.Block.create () in
  let blk2 = Graph.Block.create () in
  let region = Graph.Region.create ~blocks:[ blk1; blk2 ] () in
  let wrap = Graph.Op.create ~regions:[ region ] "t.wrap" in
  let v = Graph.Op.create ~result_tys:[ complex_f32 ] "t.v" in
  Graph.Block.append blk1 v;
  let norm =
    Graph.Op.create ~operands:[ Graph.Op.result v 0 ] ~result_tys:[ Attr.f32 ]
      ~successors:[ blk2 ] "cmath.norm"
  in
  Graph.Block.append blk1 norm;
  verify_err ~containing:"not a terminator" ctx wrap

let type_def_verifiers () =
  let ctx = cmath_ctx () in
  (* wrong parameter count *)
  verify_err ~containing:"expects 1 parameters" ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"cmath" ~name:"complex" [] ]
       "t.v");
  (* wrong parameter kind *)
  verify_err ctx
    (Graph.Op.create
       ~result_tys:
         [ Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.int 3L ] ]
       "t.v")

let attr_def_verifiers () =
  let ctx = cmath_ctx () in
  let good =
    Attr.Dyn_attr
      { dialect = "cmath"; name = "StringAttr";
        params = [ Attr.opaque ~tag:"StringParam" "x" ] }
  in
  verify_ok ctx (Graph.Op.create ~attrs:[ ("a", good) ] "t.v");
  let bad =
    Attr.Dyn_attr
      { dialect = "cmath"; name = "StringAttr"; params = [ Attr.int 1L ] }
  in
  verify_err ctx (Graph.Op.create ~attrs:[ ("a", bad) ] "t.v")

let op_cpp_hooks () =
  (* The append_vector size invariant from Listing 10. *)
  let ctx = cmath_ctx () in
  let bv n =
    Attr.dynamic ~dialect:"cmath" ~name:"BoundedVector"
      [ Attr.typ Attr.f32;
        Attr.Int { value = Int64.of_int n;
                   ty = Attr.integer ~signedness:Attr.Unsigned 32 } ]
  in
  let mk a b c =
    Graph.Op.create
      ~operands:(mk_vals [ bv a; bv b ])
      ~result_tys:[ bv c ] "cmath.append_vector"
  in
  verify_ok ctx (mk 2 3 5);
  verify_err ~containing:"native constraint" ctx (mk 2 3 4)

let unregistered_dialect_policy () =
  let ctx = Context.create ~allow_unregistered:false () in
  verify_err ~containing:"unregistered operation" ctx
    (Graph.Op.create "nope.op");
  let ctx' = Context.create () in
  verify_ok ctx' (Graph.Op.create "nope.op")

let duplicate_registration_rejected () =
  let ctx = Context.create () in
  let src = {|Dialect d { Operation o {} }|} in
  let _ = check_ok "first" (Irdl_core.Irdl.load_one ctx src) in
  check_err_containing "second" "already registered"
    (Irdl_core.Irdl.load_one ctx src)

let registration_summary_metadata () =
  let ctx = cmath_ctx () in
  match Context.lookup_op ctx "cmath.mul" with
  | Some od ->
      Alcotest.(check string) "summary" "Multiply two complex numbers"
        od.od_summary;
      Alcotest.(check bool) "not terminator" false od.od_is_terminator;
      Alcotest.(check bool) "has format" true (od.od_format <> None)
  | None -> Alcotest.fail "cmath.mul not registered"

let terminator_metadata () =
  let ctx = cmath_ctx () in
  match Context.lookup_op ctx "cmath.conditional_branch" with
  | Some od -> Alcotest.(check bool) "terminator" true od.od_is_terminator
  | None -> Alcotest.fail "missing op"

let region_arg_variadic () =
  let ctx =
    dialect_with_ops
      {|Dialect d {
          Operation stop { Successors () }
          Operation loop {
            Region body {
              Arguments (iv: !i32, rest: Variadic<!f32>)
              Terminator stop
            }
          }
        }|}
  in
  let mk arg_tys =
    let blk = Graph.Block.create ~arg_tys () in
    Graph.Block.append blk (Graph.Op.create "d.stop");
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "d.loop"
  in
  verify_ok ctx (mk [ Attr.i32 ]);
  verify_ok ctx (mk [ Attr.i32; Attr.f32; Attr.f32 ]);
  verify_err ctx (mk [ Attr.f32 ]);
  verify_err ctx (mk [ Attr.i32; Attr.i32 ])

(* ---------------- assign_slots edge cases (direct) ---------------- *)

module CE = Irdl_core.Constraint_expr

let slot name c =
  { Irdl_core.Resolve.s_name = name; s_constraint = c;
    s_loc = Irdl_support.Loc.unknown }

(* Two variadic groups around a required slot: the shape that cannot be
   inferred and must carry operandSegmentSizes. *)
let two_variadic_slots =
  [
    slot "a" (CE.Variadic (CE.Eq (Attr.typ Attr.i32)));
    slot "b" (CE.Eq (Attr.typ Attr.f32));
    slot "c" (CE.Variadic (CE.Eq (Attr.typ Attr.i32)));
  ]

let seg_sizes sizes =
  ("operandSegmentSizes",
   Attr.array (List.map (fun i -> Attr.int (Int64.of_int i)) sizes))

let assign ?attrs slots n_values =
  let op = Graph.Op.create ?attrs "d.x" in
  Irdl_core.Registration.assign_slots ~what:"operand"
    ~seg_attr:"operandSegmentSizes" ~op slots
    (List.init n_values (fun i -> i))

let assign_slots_missing_segments () =
  check_err_containing "missing attribute" "operandSegmentSizes"
    (assign two_variadic_slots 3)

let assign_slots_wrong_group_count () =
  check_err_containing "too few entries" "2 entries but"
    (assign ~attrs:[ seg_sizes [ 2; 1 ] ] two_variadic_slots 3);
  check_err_containing "too many entries" "4 entries but"
    (assign ~attrs:[ seg_sizes [ 1; 1; 1; 0 ] ] two_variadic_slots 3)

let assign_slots_sum_mismatch () =
  check_err_containing "sum too small" "sums to 2 but"
    (assign ~attrs:[ seg_sizes [ 1; 1; 0 ] ] two_variadic_slots 3);
  check_err_containing "sum too large" "sums to 5 but"
    (assign ~attrs:[ seg_sizes [ 2; 1; 2 ] ] two_variadic_slots 3);
  check_err_containing "non-variadic segment must be 1"
    "must be 1"
    (assign ~attrs:[ seg_sizes [ 1; 0; 2 ] ] two_variadic_slots 3)

let assign_slots_zero_length_optional () =
  let slots =
    [
      slot "a" (CE.Optional (CE.Eq (Attr.typ Attr.i32)));
      slot "b" (CE.Eq (Attr.typ Attr.f32));
      slot "c" (CE.Variadic (CE.Eq (Attr.typ Attr.i32)));
    ]
  in
  (* Zero-length optional segment is legal and yields an empty group. *)
  (match assign ~attrs:[ seg_sizes [ 0; 1; 2 ] ] slots 3 with
  | Ok groups ->
      Alcotest.(check (list (list int)))
        "grouping" [ []; [ 0 ]; [ 1; 2 ] ] groups
  | Error d -> Alcotest.failf "unexpected: %s" (Irdl_support.Diag.to_string d));
  (* ... but an optional segment can never take more than one value. *)
  check_err_containing "optional segment > 1" "at most 1"
    (assign ~attrs:[ seg_sizes [ 2; 1; 0 ] ] slots 3);
  (* Empty variadic groups on both sides of a required slot. *)
  match assign ~attrs:[ seg_sizes [ 0; 1; 0 ] ] two_variadic_slots 1 with
  | Ok groups ->
      Alcotest.(check (list (list int))) "all-empty" [ []; [ 0 ]; [] ] groups
  | Error d -> Alcotest.failf "unexpected: %s" (Irdl_support.Diag.to_string d)

let assign_slots_non_array_segments () =
  check_err_containing "segment attr must be an array" "array attribute"
    (assign
       ~attrs:[ ("operandSegmentSizes", Attr.int 3L) ]
       two_variadic_slots 3);
  check_err_containing "segment entries must be ints" "array of integers"
    (assign
       ~attrs:[ ("operandSegmentSizes", Attr.array [ Attr.string "x" ]) ]
       two_variadic_slots 3)

let suite =
  [
    tc "fixed arity checks" fixed_arity;
    tc "constraint variables enforce equal types" constraint_var_equality;
    tc "single variadic group is inferred" single_variadic_inferred;
    tc "optional operand is 0 or 1" optional_at_most_one;
    tc "multiple variadics need operandSegmentSizes" multi_variadic_needs_segments;
    tc "variadic results" variadic_results;
    tc "multiple variadic results need resultSegmentSizes"
      multi_variadic_results_need_segments;
    tc "required attributes" required_attrs;
    tc "optional attributes" optional_attrs;
    tc "region count" region_count;
    tc "successor count" successor_count;
    tc "successors only on terminators" non_terminator_successors;
    tc "type definition verifiers" type_def_verifiers;
    tc "attribute definition verifiers (native params)" attr_def_verifiers;
    tc "op-level IRDL-C++ hooks" op_cpp_hooks;
    tc "unregistered-dialect policy" unregistered_dialect_policy;
    tc "duplicate registration rejected" duplicate_registration_rejected;
    tc "op metadata: summary and format" registration_summary_metadata;
    tc "op metadata: terminators" terminator_metadata;
    tc "variadic region arguments" region_arg_variadic;
    tc "assign_slots: missing operandSegmentSizes" assign_slots_missing_segments;
    tc "assign_slots: wrong segment count" assign_slots_wrong_group_count;
    tc "assign_slots: segment sum mismatch" assign_slots_sum_mismatch;
    tc "assign_slots: zero-length optional segment"
      assign_slots_zero_length_optional;
    tc "assign_slots: malformed segment attribute"
      assign_slots_non_array_segments;
  ]
