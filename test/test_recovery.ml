(** Error-recovering parsing: the [_collect] entry points report every
    error in a source and keep whatever parsed, instead of stopping at the
    first failure. *)

open Irdl_support
open Util

let engine () = Diag.Engine.create ()

let messages e =
  List.map (fun (d : Diag.t) -> d.message) (Diag.Engine.diagnostics e)

let located e =
  List.for_all
    (fun (d : Diag.t) -> not (Loc.is_unknown d.loc))
    (Diag.Engine.diagnostics e)

(* ---------------- IRDL ---------------- *)

let irdl_multi_error () =
  let src =
    "Dialect broken {\n\
    \  Type t1 { Bogus }\n\
    \  Operation ok1 { Operands() Results() }\n\
    \  Operation bad { Operands(x UnknownThing) Results() }\n\
    \  Type t2 { Parameters (p: !f32) }\n\
     }\n"
  in
  let e = engine () in
  let dialects = Result.get_ok (Irdl_core.Parser.parse_file ~engine:e src) in
  Alcotest.(check int) "both errors reported" 2
    (Diag.Engine.error_count e);
  Alcotest.(check bool) "all located" true (located e);
  match dialects with
  | [ d ] ->
      Alcotest.(check (list string)) "good items survive"
        [ "ok1"; "t2" ]
        (List.filter_map
           (function
             | Irdl_core.Ast.I_op (o : Irdl_core.Ast.op_def) -> Some o.o_name
             | Irdl_core.Ast.I_type (t : Irdl_core.Ast.type_def) -> Some t.t_name
             | _ -> None)
           d.d_items)
  | ds -> Alcotest.failf "expected 1 dialect, got %d" (List.length ds)

let irdl_two_dialects () =
  (* An unterminated dialect must not swallow the next one. *)
  let src =
    "Dialect first {\n\
    \  Type broken {\n\
     Dialect second {\n\
    \  Type fine { Parameters (p: !f32) }\n\
     }\n"
  in
  let e = engine () in
  let dialects = Result.get_ok (Irdl_core.Parser.parse_file ~engine:e src) in
  Alcotest.(check bool) "errors reported" true (Diag.Engine.has_errors e);
  Alcotest.(check (list string)) "second dialect recovered" [ "second" ]
    (List.filter (fun n -> n = "second")
       (List.map (fun (d : Irdl_core.Ast.dialect) -> d.d_name) dialects))

let irdl_max_errors () =
  let src =
    "Dialect d {\n  Type a { Bogus }\n  Type b { Bogus }\n  Type c { Bogus }\n}\n"
  in
  let e = Diag.Engine.create ~max_errors:2 () in
  let _ = Result.get_ok (Irdl_core.Parser.parse_file ~engine:e src) in
  Alcotest.(check int) "capped" 2 (Diag.Engine.error_count e)

let load_collect_partial () =
  (* A definition that fails to resolve is dropped; its siblings register. *)
  let src =
    "Dialect part {\n\
    \  Type good { Parameters (p: !f32) }\n\
    \  Type dup { Parameters (p: !f32) }\n\
    \  Type dup { Parameters (q: !f64) }\n\
    \  Operation use { Operands(x: !good<!f32>) Results() }\n\
     }\n"
  in
  let e = engine () in
  let ctx = Irdl_ir.Context.create () in
  let _ = Irdl_core.Irdl.load_collect ~engine:e ctx src in
  Alcotest.(check bool) "duplicate reported" true (Diag.Engine.has_errors e);
  Alcotest.(check bool) "good type registered" true
    (Option.is_some
       (Irdl_ir.Context.lookup_type ctx ~dialect:"part" ~name:"good"));
  Alcotest.(check bool) "op registered" true
    (Option.is_some (Irdl_ir.Context.lookup_op ctx "part.use"))

(* ---------------- generic IR ---------------- *)

let ir_multi_error () =
  let src =
    "%a = \"t.one\"() : () -> (i32)\n\
     %b = \"t.two\"(%undef1) : (i32) -> (i32)\n\
     %c = \"t.three\"(%undef2) : (i32) -> (i32)\n\
     %d = \"t.four\"(%a) : (i32) -> (i32)\n"
  in
  let e = engine () in
  let ctx = Irdl_ir.Context.create () in
  let ops = Result.get_ok (Irdl_ir.Parser.parse_ops ~engine:e ctx src) in
  Alcotest.(check int) "both undefined uses reported" 2
    (Diag.Engine.error_count e);
  Alcotest.(check bool) "all located" true (located e);
  Alcotest.(check int) "well-formed ops survive" 2
    (List.length
       (List.filter
          (fun (o : Irdl_ir.Graph.op) ->
            o.op_name = "t.one" || o.op_name = "t.four")
          ops))

let ir_syntax_recovery () =
  let src =
    "%a = \"t.one\"() : () -> (i32)\n\
     %b = \"t.two\"( : ???\n\
     %c = \"t.three\"() : () -> (i32)\n"
  in
  let e = engine () in
  let ctx = Irdl_ir.Context.create () in
  let ops = Result.get_ok (Irdl_ir.Parser.parse_ops ~engine:e ctx src) in
  Alcotest.(check bool) "error reported" true (Diag.Engine.has_errors e);
  Alcotest.(check bool) "later op recovered" true
    (List.exists (fun (o : Irdl_ir.Graph.op) -> o.op_name = "t.three") ops)

let ir_region_recovery () =
  (* An error inside a region resyncs without abandoning the block. *)
  let src =
    "\"t.wrap\"() ({\n\
     ^bb0:\n\
    \  \"t.bad\"(%nope) : (i32) -> ()\n\
    \  \"t.fine\"() : () -> ()\n\
     }) : () -> ()\n"
  in
  let e = engine () in
  let ctx = Irdl_ir.Context.create () in
  let ops = Result.get_ok (Irdl_ir.Parser.parse_ops ~engine:e ctx src) in
  Alcotest.(check int) "one error" 1 (Diag.Engine.error_count e);
  match ops with
  | [ wrap ] ->
      let nested = ref [] in
      Irdl_ir.Graph.Op.walk wrap ~f:(fun o -> nested := o.op_name :: !nested);
      Alcotest.(check bool) "later op in block kept" true
        (List.mem "t.fine" !nested)
  | _ -> Alcotest.failf "expected the wrapper op to survive"

(* Fail-fast and collecting entry points agree on the first error. *)
let first_error_agrees () =
  let src = "Dialect d {\n  Type a { Bogus }\n  Type b { Bogus }\n}\n" in
  let fail_fast =
    match Irdl_core.Parser.parse_file src with
    | Error (d : Diag.t) -> d.message
    | Ok _ -> Alcotest.fail "expected an error"
  in
  let e = engine () in
  let _ = Result.get_ok (Irdl_core.Parser.parse_file ~engine:e src) in
  match messages e with
  | first :: _ -> Alcotest.(check string) "same first message" fail_fast first
  | [] -> Alcotest.fail "collect reported nothing"

let suite =
  [
    tc "IRDL: several item errors in one pass" irdl_multi_error;
    tc "IRDL: unterminated dialect resyncs to the next" irdl_two_dialects;
    tc "IRDL: --max-errors caps collection" irdl_max_errors;
    tc "IRDL: load_collect registers surviving definitions"
      load_collect_partial;
    tc "IR: several op errors in one pass" ir_multi_error;
    tc "IR: syntax error resyncs to the next op" ir_syntax_recovery;
    tc "IR: recovery inside a region block" ir_region_recovery;
    tc "collect agrees with fail-fast on the first error" first_error_agrees;
  ]
