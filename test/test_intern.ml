(** Tests for the hash-consing (uniquing) layer: smart constructors return
    canonical nodes, so structurally equal attributes and types are
    physically equal, interning is idempotent, and [hash] is consistent
    with [equal]. *)

open Irdl_ir
open Util

(* ---------------- unit invariants ---------------- *)

let phys_eq_constructed () =
  (* Two independent builds of the same type/attr share one node. *)
  let t1 = Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ] in
  let t2 = Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ] in
  Alcotest.(check bool) "dynamic types shared" true (t1 == t2);
  let a1 = Attr.array [ Attr.int 1L; Attr.string "x" ] in
  let a2 = Attr.array [ Attr.int 1L; Attr.string "x" ] in
  Alcotest.(check bool) "array attrs shared" true (a1 == a2);
  let f1 = Attr.function_ty ~inputs:[ Attr.i32 ] ~outputs:[ Attr.f32 ] in
  let f2 = Attr.function_ty ~inputs:[ Attr.i32 ] ~outputs:[ Attr.f32 ] in
  Alcotest.(check bool) "function types shared" true (f1 == f2)

let phys_eq_parser_vs_builder () =
  (* The IR parser and the programmatic API intern into the same tables. *)
  let ctx = cmath_ctx () in
  let parsed =
    check_ok "parse type" (Parser.parse_type_string ctx "!cmath.complex<f32>")
  in
  let built =
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ]
  in
  Alcotest.(check bool) "parser == builder" true (parsed == built);
  let parsed_attr =
    check_ok "parse attr"
      (Parser.parse_attr_string ctx "{a = 1 : i64, b = \"s\"}")
  in
  let built_attr =
    Attr.dict [ ("b", Attr.string "s"); ("a", Attr.int 1L) ]
  in
  Alcotest.(check bool) "dict parser == builder (any key order)" true
    (parsed_attr == built_attr)

let dict_canonical_order () =
  let d1 = Attr.dict [ ("a", Attr.int 1L); ("b", Attr.int 2L) ] in
  let d2 = Attr.dict [ ("b", Attr.int 2L); ("a", Attr.int 1L) ] in
  Alcotest.(check bool) "same node" true (d1 == d2);
  (match d1 with
  | Attr.Dict kvs ->
      Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ]
        (List.map fst kvs)
  | _ -> Alcotest.fail "not a dict")

let intern_idempotent () =
  (* Interning a hand-built (bare-constructor) value once yields the
     canonical node; interning again is the identity. *)
  let raw = Attr.Array [ Attr.Int { value = 7L; ty = Attr.i64 } ] in
  let once = Attr.intern raw in
  Alcotest.(check bool) "intern (intern x) == intern x" true
    (Attr.intern once == once);
  Alcotest.(check bool) "canonical equals smart-constructed" true
    (once == Attr.array [ Attr.int 7L ]);
  let raw_ty = Attr.Tuple [ Attr.i32; Attr.f64 ] in
  let once_ty = Attr.intern_ty raw_ty in
  Alcotest.(check bool) "intern_ty idempotent" true
    (Attr.intern_ty once_ty == once_ty)

let ids_stable () =
  let a = Attr.string "id-stability" in
  Alcotest.(check int) "same node, same id" (Attr.id a)
    (Attr.id (Attr.string "id-stability"));
  let t = Attr.tuple [ Attr.i1; Attr.i1 ] in
  Alcotest.(check int) "same ty, same id" (Attr.id_ty t)
    (Attr.id_ty (Attr.tuple [ Attr.i1; Attr.i1 ]));
  Alcotest.(check bool) "distinct nodes, distinct ids" true
    (Attr.id (Attr.string "x") <> Attr.id (Attr.string "y"))

let stats_exposed () =
  let ctx = Context.create () in
  let before = (Context.stats ~scope:`Per_domain ctx).st_uniquing in
  (* A fresh value is a miss; rebuilding it is a hit. *)
  let _ = Attr.string "stats-probe-fresh" in
  let _ = Attr.string "stats-probe-fresh" in
  let after = (Context.stats ~scope:`Per_domain ctx).st_uniquing in
  Alcotest.(check bool) "node count grew" true
    (after.Context.us_attrs.Intern.nodes > before.Context.us_attrs.Intern.nodes);
  Alcotest.(check bool) "hits grew" true
    (after.Context.us_attrs.Intern.hits > before.Context.us_attrs.Intern.hits)

(* ---------------- property tests ---------------- *)

let attr_gen = Test_ir_property.attr_gen

let hash_consistent_with_equal =
  QCheck2.Test.make ~name:"equal a b implies hash a = hash b" ~count:300
    ~print:(fun (a, b) -> Attr.to_string a ^ " / " ^ Attr.to_string b)
    QCheck2.Gen.(pair attr_gen attr_gen)
    (fun (a, b) -> (not (Attr.equal a b)) || Attr.hash a = Attr.hash b)

let generated_attrs_are_canonical =
  (* Everything built through smart constructors is already interned. *)
  QCheck2.Test.make ~name:"smart-constructed attrs are canonical" ~count:300
    ~print:Attr.to_string attr_gen
    (fun a -> Attr.intern a == a)

let structural_equal_is_phys_equal =
  QCheck2.Test.make ~name:"structural equality collapses to identity"
    ~count:300
    ~print:(fun (a, b) -> Attr.to_string a ^ " / " ^ Attr.to_string b)
    QCheck2.Gen.(pair attr_gen attr_gen)
    (fun (a, b) -> Attr.equal a b = (a == b))

let suite =
  [
    tc "physical equality of constructed nodes" phys_eq_constructed;
    tc "parser and builder share nodes" phys_eq_parser_vs_builder;
    tc "dict canonical key order" dict_canonical_order;
    tc "intern is idempotent" intern_idempotent;
    tc "uniquer ids are stable" ids_stable;
    tc "context exposes uniquing stats" stats_exposed;
    QCheck_alcotest.to_alcotest hash_consistent_with_equal;
    QCheck_alcotest.to_alcotest generated_attrs_are_canonical;
    QCheck_alcotest.to_alcotest structural_equal_is_phys_equal;
  ]
