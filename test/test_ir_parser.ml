(** Tests for the generic IR-syntax parser. *)

open Irdl_ir
open Util

let fresh () = Context.create ()

let parse_ty src =
  check_ok ("type " ^ src) (Parser.parse_type_string (fresh ()) src)

let parse_at src =
  check_ok ("attr " ^ src) (Parser.parse_attr_string (fresh ()) src)

let types_builtin () =
  Alcotest.(check bool) "i32" true (Attr.equal_ty Attr.i32 (parse_ty "i32"));
  Alcotest.(check bool) "si8" true
    (Attr.equal_ty (Attr.integer ~signedness:Attr.Signed 8) (parse_ty "si8"));
  Alcotest.(check bool) "ui64" true
    (Attr.equal_ty (Attr.integer ~signedness:Attr.Unsigned 64) (parse_ty "ui64"));
  Alcotest.(check bool) "f16" true (Attr.equal_ty Attr.f16 (parse_ty "f16"));
  Alcotest.(check bool) "index" true
    (Attr.equal_ty Attr.Index (parse_ty "index"));
  Alcotest.(check bool) "none" true
    (Attr.equal_ty Attr.None_ty (parse_ty "none"))

let types_composite () =
  Alcotest.(check bool) "tuple" true
    (Attr.equal_ty (Attr.Tuple [ Attr.i32; Attr.f32 ]) (parse_ty "tuple<i32, f32>"));
  Alcotest.(check bool) "empty tuple" true
    (Attr.equal_ty (Attr.Tuple []) (parse_ty "tuple<>"));
  Alcotest.(check bool) "function" true
    (Attr.equal_ty
       (Attr.Function { inputs = [ Attr.i32 ]; outputs = [ Attr.f32 ] })
       (parse_ty "(i32) -> f32"));
  Alcotest.(check bool) "function parens" true
    (Attr.equal_ty
       (Attr.Function { inputs = []; outputs = [ Attr.f32; Attr.i32 ] })
       (parse_ty "() -> (f32, i32)"))

let types_dynamic () =
  Alcotest.(check bool) "no params" true
    (Attr.equal_ty
       (Attr.dynamic ~dialect:"cmath" ~name:"complex" [])
       (parse_ty "!cmath.complex"));
  Alcotest.(check bool) "ty param" true
    (Attr.equal_ty complex_f32 (parse_ty "!cmath.complex<f32>"));
  Alcotest.(check bool) "attr params" true
    (Attr.equal_ty
       (Attr.dynamic ~dialect:"d" ~name:"t"
          [ Attr.int ~ty:Attr.i64 4L; Attr.string "x" ])
       (parse_ty "!d.t<4 : i64, \"x\">"))

let type_errors () =
  ignore
    (check_err "unknown" (Parser.parse_type_string (fresh ()) "f99"));
  ignore
    (check_err "unqualified bang" (Parser.parse_type_string (fresh ()) "!foo"));
  ignore (check_err "trailing" (Parser.parse_type_string (fresh ()) "i32 i32"))

let attrs_scalars () =
  Alcotest.(check bool) "typed int" true
    (Attr.equal (Attr.int ~ty:Attr.i32 3L) (parse_at "3 : i32"));
  Alcotest.(check bool) "default i64" true
    (Attr.equal (Attr.int 3L) (parse_at "3"));
  Alcotest.(check bool) "negative" true
    (Attr.equal (Attr.int (-5L)) (parse_at "-5"));
  Alcotest.(check bool) "float" true
    (Attr.equal (Attr.float ~ty:Attr.f32 1.5) (parse_at "1.5 : f32"));
  Alcotest.(check bool) "hex float" true
    (Attr.equal (Attr.float 3.14) (parse_at (Attr.to_string (Attr.float 3.14))));
  Alcotest.(check bool) "string" true
    (Attr.equal (Attr.string "a\nb") (parse_at "\"a\\nb\""));
  Alcotest.(check bool) "bools" true (Attr.equal (Attr.bool true) (parse_at "true"));
  Alcotest.(check bool) "unit" true (Attr.equal Attr.Unit (parse_at "unit"));
  Alcotest.(check bool) "symbol" true
    (Attr.equal (Attr.symbol "f") (parse_at "@f"))

let attrs_aggregates () =
  Alcotest.(check bool) "array" true
    (Attr.equal
       (Attr.array [ Attr.int 1L; Attr.string "s" ])
       (parse_at "[1, \"s\"]"));
  Alcotest.(check bool) "dict" true
    (Attr.equal
       (Attr.dict [ ("a", Attr.int 1L) ])
       (parse_at "{a = 1}"));
  Alcotest.(check bool) "nested" true
    (Attr.equal
       (Attr.array [ Attr.array []; Attr.dict [] ])
       (parse_at "[[], {}]"))

let attrs_special () =
  Alcotest.(check bool) "type attr" true
    (Attr.equal (Attr.typ Attr.f32) (parse_at "f32"));
  Alcotest.(check bool) "enum" true
    (Attr.equal
       (Attr.enum ~dialect:"cmath" ~enum:"signedness" "Signed")
       (parse_at "#cmath<signedness.Signed>"));
  Alcotest.(check bool) "dyn attr" true
    (Attr.equal
       (Attr.Dyn_attr { dialect = "d"; name = "a"; params = [ Attr.int 1L ] })
       (parse_at "#d.a<1>"));
  Alcotest.(check bool) "opaque" true
    (Attr.equal (Attr.opaque ~tag:"P" "body") (parse_at "#native<P, \"body\">"));
  Alcotest.(check bool) "typeid" true
    (Attr.equal (Attr.Type_id "X") (parse_at "#typeid<X>"));
  Alcotest.(check bool) "loc" true
    (Attr.equal
       (Attr.Location { file = "f.ml"; line = 1; col = 2 })
       (parse_at "loc(\"f.ml\":1:2)"))

let simple_op () =
  let ctx = fresh () in
  let op = parse_op ctx {|%a, %b = "t.op"() {k = 1 : i32} : () -> (i32, f32)|} in
  Alcotest.(check string) "name" "t.op" (Graph.Op.name op);
  Alcotest.(check int) "results" 2 (Graph.Op.num_results op);
  Alcotest.(check bool) "attr" true
    (Graph.Op.attr op "k" = Some (Attr.int ~ty:Attr.i32 1L))

let operands_resolve () =
  let ctx = fresh () in
  let ops =
    check_ok "ops"
      (Parser.parse_ops ctx
         {|
%x = "t.def"() : () -> i32
"t.use"(%x, %x) : (i32, i32) -> ()
|})
  in
  match ops with
  | [ def; use ] ->
      let v = Graph.Op.result def 0 in
      Alcotest.(check bool) "same value" true
        (List.for_all (Graph.Value.equal v) (Graph.Op.operands use))
  | _ -> Alcotest.fail "expected two ops"

let regions_and_blocks () =
  let ctx = fresh () in
  let op =
    parse_op ctx
      {|
"t.wrap"() ({
^bb0(%a: i32):
  "t.br"()[^bb1] : () -> ()
^bb1:
  "t.end"() : () -> ()
}) : () -> ()
|}
  in
  match op.Graph.regions with
  | [ r ] -> (
      Alcotest.(check int) "blocks" 2 (Graph.Region.num_blocks r);
      match Graph.Region.blocks r with
      | [ b0; b1 ] -> (
          Alcotest.(check int) "args" 1 (List.length (Graph.Block.args b0));
          match Graph.Block.ops b0 with
          | [ br ] ->
              Alcotest.(check bool) "successor" true
                (List.exists (fun (s : Graph.block) -> s == b1)
                   br.Graph.successors)
          | _ -> Alcotest.fail "expected one op in bb0")
      | _ -> Alcotest.fail "expected two blocks")
  | _ -> Alcotest.fail "expected one region"

let forward_block_reference () =
  (* ^bb1 is referenced before its label appears — must resolve. *)
  let ctx = fresh () in
  let op =
    parse_op ctx
      {|
"t.wrap"() ({
^bb0:
  "t.br"()[^bb2] : () -> ()
^bb2:
  "t.end"() : () -> ()
}) : () -> ()
|}
  in
  verify_ok ctx op

let forward_value_reference () =
  (* Values may be used textually before their definition within a region. *)
  let ctx = fresh () in
  let op =
    parse_op ctx
      {|
"t.wrap"() ({
^bb0:
  "t.use"(%later) : (i32) -> ()
  %later = "t.def"() : () -> i32
}) : () -> ()
|}
  in
  let uses = ref 0 in
  Graph.Op.walk op ~f:(fun o ->
      if Graph.Op.name o = "t.use" then
        match Graph.Op.operands o with
        | [ v ] ->
            incr uses;
            Alcotest.(check bool) "type patched" true
              (Attr.equal_ty Attr.i32 (Graph.Value.ty v));
            Alcotest.(check bool) "def patched" true
              (Graph.Value.defining_op v <> None)
        | _ -> Alcotest.fail "one operand expected");
  Alcotest.(check int) "found use" 1 !uses

let undefined_value_rejected () =
  let ctx = fresh () in
  check_err_containing "undef value" "undefined value"
    (Parser.parse_ops ctx {|"t.use"(%nope) : (i32) -> ()|})

let undefined_block_rejected () =
  let ctx = fresh () in
  check_err_containing "undef block" "undefined block"
    (Parser.parse_ops ctx
       {|
"t.wrap"() ({
^bb0:
  "t.br"()[^nowhere] : () -> ()
}) : () -> ()
|})

let multiple_regions () =
  let ctx = fresh () in
  let op =
    parse_op ctx
      {|"t.if"() ({ "t.a"() : () -> () }, { "t.b"() : () -> () }) : () -> ()|}
  in
  Alcotest.(check int) "regions" 2 (List.length op.Graph.regions)

let empty_region () =
  let ctx = fresh () in
  let op = parse_op ctx {|"t.x"() ({}) : () -> ()|} in
  match op.Graph.regions with
  | [ r ] -> Alcotest.(check int) "no blocks" 0 (Graph.Region.num_blocks r)
  | _ -> Alcotest.fail "expected one region"

let operand_type_mismatch () =
  let ctx = fresh () in
  check_err_containing "mismatch" "declared with"
    (Parser.parse_ops ctx
       {|
%x = "t.def"() : () -> i32
"t.use"(%x) : (f32) -> ()
|})

let arity_mismatch () =
  let ctx = fresh () in
  check_err_containing "counts" "operand types"
    (Parser.parse_ops ctx {|"t.use"() : (f32) -> ()|});
  let ctx = fresh () in
  check_err_containing "result binding" "results"
    (Parser.parse_ops ctx {|%a, %b = "t.def"() : () -> i32|})

let comments_skipped () =
  let ctx = fresh () in
  let ops =
    check_ok "comments"
      (Parser.parse_ops ctx
         {|
// leading comment
%x = "t.def"() : () -> i32 // trailing
// done
|})
  in
  Alcotest.(check int) "one op" 1 (List.length ops)

let custom_format_parse () =
  let ctx = cmath_ctx () in
  let ops =
    check_ok "custom"
      (Parser.parse_ops ctx
         {|
"t.wrap"() ({
^bb0(%p: !cmath.complex<f64>):
  %m = cmath.mul %p, %p : f64
  %n = cmath.norm %m : f64
}) : () -> ()
|})
  in
  List.iter (verify_ok ctx) ops

let custom_format_requires_registration () =
  let ctx = fresh () in
  check_err_containing "unknown custom" "unknown operation"
    (Parser.parse_ops ctx "%x = nope.op %x : f32")

let custom_format_type_mismatch () =
  let ctx = cmath_ctx () in
  check_err_containing "elem mismatch" "expected"
    (Parser.parse_ops ctx
       {|
"t.wrap"() ({
^bb0(%p: !cmath.complex<f64>):
  %m = cmath.mul %p, %p : f32
}) : () -> ()
|})

let suite =
  [
    tc "builtin types" types_builtin;
    tc "composite types" types_composite;
    tc "dynamic types" types_dynamic;
    tc "type errors" type_errors;
    tc "scalar attributes" attrs_scalars;
    tc "aggregate attributes" attrs_aggregates;
    tc "special attributes" attrs_special;
    tc "simple generic op" simple_op;
    tc "operand resolution" operands_resolve;
    tc "regions, blocks, successors" regions_and_blocks;
    tc "forward block references" forward_block_reference;
    tc "forward value references" forward_value_reference;
    tc "undefined value rejected" undefined_value_rejected;
    tc "undefined block rejected" undefined_block_rejected;
    tc "multiple regions" multiple_regions;
    tc "empty region" empty_region;
    tc "operand type mismatch" operand_type_mismatch;
    tc "arity mismatches" arity_mismatch;
    tc "comments are skipped" comments_skipped;
    tc "custom format parsing" custom_format_parse;
    tc "custom form requires registration" custom_format_requires_registration;
    tc "custom format type checking" custom_format_type_mismatch;
  ]
