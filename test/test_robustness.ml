(** Robustness properties: no parser entry point may escape with anything
    but a diagnostic, whatever the input. *)

open QCheck2.Gen
open Util

let printable_gen = string_size ~gen:printable (int_range 0 120)

(* Strings biased toward the parsers' own token vocabulary: plain random
   printables rarely get past the first token. *)
let token_soup_gen =
  let frag =
    oneofl
      [ "Dialect"; "Operation"; "Type"; "Operands"; "("; ")"; "{"; "}"; "<";
        ">"; "!f32"; "#a"; "$x"; ":"; ","; "="; "["; "]"; "\"s\""; "42"; "-";
        "%v"; "^bb"; "@f"; "d.op"; "Variadic"; "AnyOf"; "->"; "//c\n"; " " ]
  in
  let* frags = list_size (int_range 0 40) frag in
  return (String.concat "" frags)

let never_raises name f gen =
  QCheck2.Test.make ~name ~count:500 gen (fun src ->
      match f src with Ok _ | Error _ -> true | exception _ -> false)

let irdl_parser_total g name =
  never_raises name (fun src -> Irdl_core.Parser.parse_file src) g

let ir_parser_total g name =
  never_raises name
    (fun src -> Irdl_ir.Parser.parse_ops (Irdl_ir.Context.create ()) src)
    g

let pattern_parser_total g name =
  never_raises name
    (fun src ->
      Irdl_rewrite.Textual.parse_patterns (Irdl_ir.Context.create ()) src)
    g

let load_total g name =
  never_raises name
    (fun src -> Irdl_core.Irdl.load (Irdl_ir.Context.create ()) src)
    g

(* Verification never raises either, even on badly-shaped ops. *)
let verify_total () =
  let ctx = cmath_ctx () in
  let open Irdl_ir in
  let detached_with_everything =
    Graph.Op.create
      ~operands:
        [ Graph.Op.result (Graph.Op.create ~result_tys:[ Attr.None_ty ] "t.v") 0 ]
      ~result_tys:[ Attr.None_ty ]
      ~attrs:[ ("operandSegmentSizes", Attr.string "not an array") ]
      ~regions:[ Graph.Region.create () ]
      "cmath.mul"
  in
  match Verifier.verify ctx detached_with_everything with
  | Ok () -> Alcotest.fail "should not verify"
  | Error _ -> ()

(* Raw bytes, the full 0-255 range: embedded NULs, broken UTF-8, control
   characters. *)
let bytes_gen = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 120)

(* Real IRDL sources with random point mutations: valid-looking input that
   goes wrong somewhere in the middle — the profile recovery must survive. *)
let mutated_corpus_gen =
  let* entry = oneofl Irdl_dialects.Corpus.all in
  let src = entry.Irdl_dialects.Corpus.source in
  let n = String.length src in
  let* edits = list_size (int_range 1 4) (pair (int_range 0 (n - 1)) char) in
  let b = Bytes.of_string src in
  List.iter (fun (i, c) -> Bytes.set b i c) edits;
  return (Bytes.to_string b)

(* The collecting entry points are total too: whatever the input, every
   reported diagnostic carries a location and nothing escapes. *)
let collect_never_raises name f gen =
  QCheck2.Test.make ~name ~count:300 gen (fun src ->
      let engine = Irdl_support.Diag.Engine.create () in
      match f ~engine src with
      | _ ->
          List.for_all
            (fun (d : Irdl_support.Diag.t) -> d.message <> "")
            (Irdl_support.Diag.Engine.diagnostics engine)
      | exception _ -> false)

let irdl_collect_total g name =
  collect_never_raises name
    (fun ~engine src -> Irdl_core.Parser.parse_file ~engine src)
    g

let ir_collect_total g name =
  collect_never_raises name
    (fun ~engine src ->
      Irdl_ir.Parser.parse_ops ~engine (Irdl_ir.Context.create ()) src)
    g

let load_collect_total g name =
  collect_never_raises name
    (fun ~engine src ->
      Irdl_core.Irdl.load_collect ~engine (Irdl_ir.Context.create ()) src)
    g

let suite =
  [
    QCheck_alcotest.to_alcotest
      (irdl_parser_total printable_gen "IRDL parser total on noise");
    QCheck_alcotest.to_alcotest
      (irdl_parser_total token_soup_gen "IRDL parser total on token soup");
    QCheck_alcotest.to_alcotest
      (ir_parser_total printable_gen "IR parser total on noise");
    QCheck_alcotest.to_alcotest
      (ir_parser_total token_soup_gen "IR parser total on token soup");
    QCheck_alcotest.to_alcotest
      (pattern_parser_total token_soup_gen "pattern parser total");
    QCheck_alcotest.to_alcotest
      (load_total token_soup_gen "load (parse+resolve+register) total");
    tc "verifier total on malformed ops" verify_total;
    QCheck_alcotest.to_alcotest
      (irdl_parser_total bytes_gen "IRDL parser total on raw bytes");
    QCheck_alcotest.to_alcotest
      (ir_parser_total bytes_gen "IR parser total on raw bytes");
    QCheck_alcotest.to_alcotest
      (load_total mutated_corpus_gen "load total on mutated corpus");
    QCheck_alcotest.to_alcotest
      (irdl_collect_total token_soup_gen "IRDL collect total on token soup");
    QCheck_alcotest.to_alcotest
      (irdl_collect_total bytes_gen "IRDL collect total on raw bytes");
    QCheck_alcotest.to_alcotest
      (irdl_collect_total mutated_corpus_gen "IRDL collect total on mutated corpus");
    QCheck_alcotest.to_alcotest
      (ir_collect_total token_soup_gen "IR collect total on token soup");
    QCheck_alcotest.to_alcotest
      (ir_collect_total bytes_gen "IR collect total on raw bytes");
    QCheck_alcotest.to_alcotest
      (load_collect_total mutated_corpus_gen "load_collect total on mutated corpus");
  ]
