(** Tests for the dominance-aware CSE pass. *)

open Irdl_ir
open Util

let count scope name =
  let n = ref 0 in
  Graph.Op.walk scope ~f:(fun o -> if Graph.Op.name o = name then incr n);
  !n

let basic_duplicates () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>):
  %n1 = cmath.norm %p : f32
  %n2 = cmath.norm %p : f32
  %m = "arith.mulf"(%n1, %n2) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "eliminated" 1 (Irdl_rewrite.Cse.eliminated stats);
  Alcotest.(check int) "one norm left" 1 (count func "cmath.norm");
  verify_ok ctx func;
  (* the mulf now squares the single remaining norm *)
  Graph.Op.walk func ~f:(fun o ->
      if Graph.Op.name o = "arith.mulf" then
        match Graph.Op.operands o with
        | [ a; b ] ->
            Alcotest.(check bool) "same operand" true (Graph.Value.equal a b)
        | _ -> Alcotest.fail "two operands expected")

let different_operands_kept () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %n1 = cmath.norm %p : f32
  %n2 = cmath.norm %q : f32
  "func.return"(%n1, %n2) : (f32, f32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "nothing eliminated" 0 (Irdl_rewrite.Cse.eliminated stats)

let attributes_distinguish () =
  let ctx = Context.create () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0:
  %a = "arith.constant"() {value = 1 : i32} : () -> i32
  %b = "arith.constant"() {value = 2 : i32} : () -> i32
  %c = "arith.constant"() {value = 1 : i32} : () -> i32
  "t.use"(%a, %b, %c) : (i32, i32, i32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "only equal constants merge" 1
    (Irdl_rewrite.Cse.eliminated stats);
  Alcotest.(check int) "two constants left" 2 (count func "arith.constant")

let impure_ops_kept () =
  let ctx = Context.create () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%m: !builtin.memref, %i: index):
  %a = "memref.load"(%m, %i) : (!builtin.memref, index) -> f32
  %b = "memref.load"(%m, %i) : (!builtin.memref, index) -> f32
  "t.use"(%a, %b) : (f32, f32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "loads are not CSE'd" 0
    (Irdl_rewrite.Cse.eliminated stats)

let sibling_blocks_not_merged () =
  (* Duplicates in sibling branches do not dominate each other. *)
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%c: i1, %p: !cmath.complex<f32>):
  "cmath.conditional_branch"(%c)[^l, ^r] : (i1) -> ()
^l:
  %n1 = cmath.norm %p : f32
  "t.use"(%n1) : (f32) -> ()
^r:
  %n2 = cmath.norm %p : f32
  "t.use"(%n2) : (f32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "no cross-branch merge" 0
    (Irdl_rewrite.Cse.eliminated stats)

let dominating_block_merges () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%c: i1, %p: !cmath.complex<f32>):
  %n0 = cmath.norm %p : f32
  "cmath.conditional_branch"(%c)[^l, ^r] : (i1) -> ()
^l:
  %n1 = cmath.norm %p : f32
  "t.use"(%n1) : (f32) -> ()
^r:
  "t.end"() : () -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "entry def subsumes branch dup" 1
    (Irdl_rewrite.Cse.eliminated stats);
  verify_ok ctx func

let nested_region_merge () =
  (* An outer computation dominates uses in a nested region. *)
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%lb: i32, %p: !cmath.complex<f32>):
  %n0 = cmath.norm %p : f32
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    %n1 = cmath.norm %p : f32
    "t.use"(%n1) : (f32) -> ()
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "outer def subsumes inner dup" 1
    (Irdl_rewrite.Cse.eliminated stats);
  verify_ok ctx func

let inner_does_not_leak () =
  (* The reverse direction must not merge: an inner def does not dominate
     an outer duplicate. *)
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%lb: i32, %p: !cmath.complex<f32>):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    %n1 = cmath.norm %p : f32
    "t.use"(%n1) : (f32) -> ()
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
  %n0 = cmath.norm %p : f32
  "t.use"(%n0) : (f32) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "no merge across region exit" 0
    (Irdl_rewrite.Cse.eliminated stats)

let custom_purity () =
  let ctx = Context.create () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0:
  %a = "x.effectful"() : () -> i32
  %b = "x.effectful"() : () -> i32
  "t.use"(%a, %b) : (i32, i32) -> ()
}) : () -> ()
|}
  in
  (* default: looks pure (no telltale mnemonic), merges *)
  let s1 = Irdl_rewrite.Cse.run ctx func in
  Alcotest.(check int) "default merges" 1 (Irdl_rewrite.Cse.eliminated s1);
  (* custom predicate: nothing is pure, nothing merges *)
  let func2 =
    parse_op ctx
      {|
"func.func"() ({
^bb0:
  %a = "x.effectful"() : () -> i32
  %b = "x.effectful"() : () -> i32
  "t.use"(%a, %b) : (i32, i32) -> ()
}) : () -> ()
|}
  in
  let s2 = Irdl_rewrite.Cse.run ~is_pure:(fun _ -> false) ctx func2 in
  Alcotest.(check int) "custom keeps" 0 (Irdl_rewrite.Cse.eliminated s2)

let suite =
  [
    tc "duplicate pure ops merge" basic_duplicates;
    tc "different operands are kept" different_operands_kept;
    tc "attributes distinguish ops" attributes_distinguish;
    tc "impure ops are kept" impure_ops_kept;
    tc "sibling branches do not merge" sibling_blocks_not_merged;
    tc "dominating defs subsume branch duplicates" dominating_block_merges;
    tc "outer defs subsume nested-region duplicates" nested_region_merge;
    tc "inner defs do not leak out" inner_does_not_leak;
    tc "custom purity predicate" custom_purity;
  ]
