(* Bytecode round-trip and robustness suites.

   Round-trip: randomly generated modules (programmatic graphs and textual
   sources) and dialect specs (corpus text and synthetic resolved records
   covering every constraint constructor) must satisfy
   text→graph ≡ emit→load under the structural oracles in
   [Bytecode.Equal]; re-emitting a loaded module is byte-identical (the
   property the committed golden fixture gates in CI).

   Robustness: truncations and bit flips of valid bytecode must surface as
   diagnostics — an [Error] or engine emits — never as an exception. *)

open Util
module Attr = Irdl_ir.Attr
module Graph = Irdl_ir.Graph
module Context = Irdl_ir.Context
module Bytecode = Irdl_bytecode.Bytecode
module Frontend = Irdl_bytecode.Frontend
module Resolve = Irdl_core.Resolve
module C = Irdl_core.Constraint_expr
module Diag = Irdl_support.Diag

let ctx () = Context.create ()

(* ---------------- random module graphs ---------------- *)

let pick st a = a.(Random.State.int st (Array.length a))

let ty_pool =
  [|
    Attr.i32;
    Attr.i64;
    Attr.f32;
    Attr.index;
    Attr.tuple [ Attr.i32; Attr.f32 ];
    Attr.function_ty ~inputs:[ Attr.i32 ] ~outputs:[ Attr.f64 ];
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ];
    Attr.integer ~signedness:Attr.Signed 8;
  |]

let attr_pool =
  [|
    Attr.unit;
    Attr.bool true;
    Attr.int 42L;
    Attr.int Int64.min_int;
    Attr.int Int64.max_int;
    Attr.float 3.5;
    Attr.float nan;
    Attr.float neg_infinity;
    Attr.string "hello\x00\xffworld";
    Attr.string "";
    Attr.array [ Attr.int 1L; Attr.string "x" ];
    Attr.dict [ ("b", Attr.unit); ("a", Attr.int 7L) ];
    Attr.typ Attr.f32;
    Attr.enum ~dialect:"d" ~enum:"e" "case";
    Attr.symbol "@main";
    Attr.location ~file:"f.mlir" ~line:3 ~col:9;
    Attr.type_id "cmath.complex";
    Attr.opaque ~tag:"native" "repr<1>";
    Attr.dyn_attr ~dialect:"d" ~name:"a" [ Attr.bool false ];
  |]

let rand_attrs st =
  List.init (Random.State.int st 3) (fun i ->
      (Printf.sprintf "k%d" i, pick st attr_pool))

(* A random op: operands drawn from [avail], results added to it, an
   occasional region with blocks, arguments and branch successors. *)
let rec rand_op st ~depth avail =
  let n_operands = min (Random.State.int st 4) (List.length !avail) in
  let operands =
    List.init n_operands (fun _ ->
        List.nth !avail (Random.State.int st (List.length !avail)))
  in
  let result_tys =
    List.init (Random.State.int st 3) (fun _ -> pick st ty_pool)
  in
  let regions =
    if depth < 2 && Random.State.int st 4 = 0 then
      [ rand_region st ~depth avail ]
    else []
  in
  let op =
    Graph.Op.create ~operands ~result_tys ~attrs:(rand_attrs st) ~regions
      (Printf.sprintf "t.op%d" (Random.State.int st 5))
  in
  avail := Graph.Op.results op @ !avail;
  op

and rand_region st ~depth avail =
  let n_blocks = 1 + Random.State.int st 2 in
  let blocks =
    List.init n_blocks (fun _ ->
        let arg_tys =
          List.init (Random.State.int st 3) (fun _ -> pick st ty_pool)
        in
        Graph.Block.create ~arg_tys ())
  in
  let blocks_arr = Array.of_list blocks in
  List.iter
    (fun b ->
      avail := Graph.Block.args b @ !avail;
      for _ = 1 to Random.State.int st 3 do
        Graph.Block.append b (rand_op st ~depth:(depth + 1) avail)
      done;
      if n_blocks > 1 && Random.State.int st 2 = 0 then
        Graph.Block.append b
          (Graph.Op.create ~successors:[ pick st blocks_arr ] "t.br"))
    blocks;
  Graph.Region.create ~blocks ()

let rand_module st =
  let avail = ref [] in
  List.init (1 + Random.State.int st 5) (fun _ -> rand_op st ~depth:0 avail)

let emit_ok what ops =
  check_ok what (Bytecode.Write.module_to_string ops)

let load_ok what ctx blob = check_ok what (Bytecode.read_module ctx blob)

let roundtrip_generated_graphs () =
  let st = Random.State.make [| 0xb17ec0de |] in
  for i = 1 to 1_000 do
    let ops = rand_module st in
    let blob = emit_ok "emit" ops in
    let ops' = load_ok "load" (ctx ()) blob in
    if not (Bytecode.Equal.module_eq ops ops') then
      Alcotest.failf "round-trip mismatch on generated graph %d" i;
    (* Loaded modules re-emit byte-identically: the golden-fixture gate. *)
    let blob' = emit_ok "re-emit" ops' in
    if blob <> blob' then
      Alcotest.failf "re-emit not byte-identical on generated graph %d" i
  done

(* Textual leg: parse generated text (forward references included), then
   emit→load and compare against the parsed graph. *)
let generated_text st n =
  let buf = Buffer.create (n * 40) in
  Buffer.add_string buf "%v0 = \"t.const\"() : () -> i32\n";
  for i = 1 to n - 1 do
    (* A forward reference to the next op every few ops. *)
    if i < n - 1 && Random.State.int st 7 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "%%v%d = \"t.fwd\"(%%v%d) : (i32) -> i32\n" i (i + 1))
    else
      Buffer.add_string buf
        (Printf.sprintf "%%v%d = \"t.%s\"(%%v%d) : (i32) -> i32\n" i
           (if i land 1 = 0 then "add" else "mul")
           (i - 1))
  done;
  Buffer.contents buf

let roundtrip_generated_text () =
  let st = Random.State.make [| 0x7e47 |] in
  for _ = 1 to 50 do
    let src = generated_text st (5 + Random.State.int st 60) in
    let c = ctx () in
    let ops = check_ok "parse" (Irdl_ir.Parser.parse_ops c src) in
    let blob = emit_ok "emit" ops in
    let ops' = load_ok "load" (ctx ()) blob in
    if not (Bytecode.Equal.module_eq ops ops') then
      Alcotest.failf "round-trip mismatch on generated text:\n%s" src
  done

(* Streaming load agrees with materializing load (it is the same code
   path, drained): same op count, same structure. *)
let stream_equals_materialize () =
  let st = Random.State.make [| 0x57a3 |] in
  for _ = 1 to 50 do
    let ops = rand_module st in
    let blob = emit_ok "emit" ops in
    let session = Bytecode.Stream.create (ctx ()) blob in
    let rec drain acc =
      match Bytecode.Stream.next session with
      | Ok None -> List.rev acc
      | Ok (Some op) -> drain (op :: acc)
      | Error d -> Alcotest.failf "stream error: %s" (Diag.to_string d)
    in
    let streamed = drain [] in
    if not (Bytecode.Equal.module_eq ops streamed) then
      Alcotest.fail "streamed load differs from emitted module"
  done

(* ---------------- streaming skip ---------------- *)

let skip_semantics () =
  let c = ctx () in
  let src =
    "%a = \"t.const\"() : () -> i32\n\
     %b = \"t.add\"(%a) : (i32) -> i32\n\
     %c = \"t.mul\"(%b) : (i32) -> i32\n"
  in
  let ops = check_ok "parse" (Irdl_ir.Parser.parse_ops c src) in
  let blob = emit_ok "emit" ops in
  (* Skip the first op: the remaining two still load; the skipped
     definition surfaces as a Released placeholder. *)
  let session = Bytecode.Stream.create (ctx ()) blob in
  (match Bytecode.Stream.skip session with
  | Ok true -> ()
  | _ -> Alcotest.fail "skip should succeed");
  let rec drain acc =
    match Bytecode.Stream.next session with
    | Ok None -> List.rev acc
    | Ok (Some op) -> drain (op :: acc)
    | Error d -> Alcotest.failf "stream error: %s" (Diag.to_string d)
  in
  let rest = drain [] in
  Alcotest.(check int) "two ops after skip" 2 (List.length rest);
  let b = List.hd rest in
  (match (Graph.Op.operand b 0).v_def with
  | Graph.Released -> ()
  | _ -> Alcotest.fail "skipped definition should be Released");
  (* Skipping everything: three skips then end of input. *)
  let session = Bytecode.Stream.create (ctx ()) blob in
  let rec count n =
    match Bytecode.Stream.skip session with
    | Ok true -> count (n + 1)
    | Ok false -> n
    | Error d -> Alcotest.failf "skip error: %s" (Diag.to_string d)
  in
  Alcotest.(check int) "three ops skipped" 3 (count 0)

(* ---------------- multi-document buffers ---------------- *)

let multi_document () =
  let c = ctx () in
  let parse src = check_ok "parse" (Irdl_ir.Parser.parse_ops c src) in
  let m1 = parse "%a = \"t.one\"() : () -> i32\n" in
  let m2 = parse "%b = \"t.two\"() : () -> f32\n%c = \"t.three\"(%b) : (f32) -> f32\n" in
  let blob = emit_ok "emit1" m1 ^ emit_ok "emit2" m2 in
  Alcotest.(check int)
    "two documents" 2
    (List.length (Bytecode.documents blob));
  (match Bytecode.split_documents blob with
  | [ b1; b2 ] ->
      Alcotest.(check bool) "split1 sniffs" true (Bytecode.sniff b1);
      Alcotest.(check bool) "split2 sniffs" true (Bytecode.sniff b2)
  | parts -> Alcotest.failf "expected 2 parts, got %d" (List.length parts));
  let ops = load_ok "load concat" (ctx ()) blob in
  Alcotest.(check int) "three ops across documents" 3 (List.length ops);
  Alcotest.(check bool)
    "concat equals m1 @ m2" true
    (Bytecode.Equal.module_eq (m1 @ m2) ops)

(* ---------------- writer error cases ---------------- *)

let writer_undefined_value () =
  let c = ctx () in
  let ops =
    check_ok "parse"
      (Irdl_ir.Parser.parse_ops ~engine:(Diag.Engine.create ()) c
         "%a = \"t.use\"(%undef) : (i32) -> i32\n")
  in
  (* %undef stays a Forward_ref: the writer must reject the module. *)
  check_err_containing "emit with undefined value" "never defined"
    (Bytecode.Write.module_to_string ops)

let writer_toplevel_successor () =
  let b = Graph.Block.create () in
  let op = Graph.Op.create ~successors:[ b ] "t.br" in
  check_err_containing "emit with top-level successor" "successor"
    (Bytecode.Write.module_to_string [ op ])

(* ---------------- version and kind skew ---------------- *)

let version_skew () =
  let blob = emit_ok "emit" [] in
  (* Bump the version varint (byte right after the magic). *)
  let bumped = Bytes.of_string blob in
  Bytes.set bumped (String.length Bytecode.magic)
    (Char.chr (Bytecode.version + 1));
  check_err_containing "future version" "version"
    (Bytecode.read_module (ctx ()) (Bytes.to_string bumped));
  (* A module document is not a dialect pack, and vice versa. *)
  check_err_containing "module as dialects" "expected dialect"
    (Bytecode.read_dialects blob);
  let dblob = check_ok "emit dialects" (Bytecode.Write.dialects_to_string []) in
  check_err_containing "dialects as module" "expected an IR module"
    (Bytecode.read_module (ctx ()) dblob);
  check_err_containing "text as bytecode" "bad magic"
    (Bytecode.read_module (ctx ()) "%a = \"t.x\"() : () -> i32\n")

(* The compatibility window. The writer's header version is frozen at 1 —
   the contract the committed golden fixture (test/bytecode.t) gates — and
   the reader accepts exactly versions 1..[Bytecode.version]: anything
   outside the window is rejected up front with a diagnostic located at
   the input file, never decoded on a guess. *)
let compat_window () =
  let blob =
    emit_ok "emit"
      [ Graph.Op.create ~result_tys:[ Attr.i32 ] "t.window" ]
  in
  let voff = String.length Bytecode.magic in
  Alcotest.(check int) "header version byte is frozen at 1" 1
    (Char.code blob.[voff]);
  ignore (load_ok "v1 document loads" (cmath_ctx ()) blob);
  let patched v =
    let b = Bytes.of_string blob in
    Bytes.set b voff (Char.chr v);
    Bytes.to_string b
  in
  check_err_containing "version 0 (below the window)" "version"
    (Bytecode.read_module ~file:"skew.irdlbc" (ctx ()) (patched 0));
  (match
     Bytecode.read_module ~file:"skew.irdlbc" (ctx ())
       (patched (Bytecode.version + 1))
   with
  | Ok _ -> Alcotest.fail "future version must be rejected"
  | Error d ->
      check_err_containing "future version" "version" (Error d);
      Alcotest.(check bool)
        "diagnostic is located" false
        (Irdl_support.Loc.is_unknown d.Diag.loc);
      Alcotest.(check string)
        "diagnostic names the input file" "skew.irdlbc"
        d.Diag.loc.start_pos.file)

(* ---------------- dialect round-trips ---------------- *)

let dialects_of_source what src =
  check_ok what (Irdl_core.Irdl.analyze src)

let roundtrip_corpus_dialects () =
  let entries =
    Irdl_dialects.Cmath.source
    :: List.map
         (fun (e : Irdl_dialects.Corpus.entry) -> e.source)
         Irdl_dialects.Corpus.all
  in
  List.iter
    (fun src ->
      let dls = dialects_of_source "analyze" src in
      let blob = check_ok "emit dialects" (Bytecode.Write.dialects_to_string dls) in
      let dls' = check_ok "load dialects" (Bytecode.read_dialects blob) in
      Alcotest.(check int) "dialect count" (List.length dls) (List.length dls');
      List.iter2
        (fun d1 d2 ->
          if not (Bytecode.Equal.dialect_eq d1 d2) then
            Alcotest.failf "dialect %s did not round-trip" d1.Resolve.dl_name)
        dls dls')
    entries

(* Synthetic resolved dialects covering every constraint constructor —
   breadth the corpus text cannot guarantee. *)
let rec rand_constraint st depth : C.t =
  let sub () =
    if depth >= 3 then C.Any else rand_constraint st (depth + 1)
  in
  match Random.State.int st (if depth >= 3 then 14 else 24) with
  | 0 -> C.Any
  | 1 -> C.Any_type
  | 2 -> C.Any_attr
  | 3 -> C.Eq (pick st attr_pool)
  | 4 ->
      C.Base_type
        {
          dialect = "d";
          name = "t";
          params = (if Random.State.bool st then None else Some [ sub () ]);
        }
  | 5 -> C.Base_attr { dialect = "d"; name = "a"; params = Some [] }
  | 6 -> C.Int_param { ik_width = 32; ik_signedness = Attr.Signed }
  | 7 -> C.Float_param (if Random.State.bool st then None else Some Attr.F32)
  | 8 -> C.String_param
  | 9 -> C.Symbol_param
  | 10 -> C.Bool_param
  | 11 -> C.Location_param
  | 12 -> C.Type_id_param
  | 13 -> C.Enum_param { dialect = "d"; enum = "e" }
  | 14 -> C.Array_any
  | 15 -> C.Array_of (sub ())
  | 16 -> C.Array_exact [ sub (); sub () ]
  | 17 -> C.Any_of [ sub (); sub () ]
  | 18 -> C.And [ sub () ]
  | 19 -> C.Not (sub ())
  | 20 -> C.Var { v_name = "T"; v_constraint = sub () }
  | 21 -> C.Native { name = "n"; base = sub (); snippets = [ "s1"; "s2" ] }
  | 22 -> C.Native_param { name = "np"; class_name = "Cls" }
  | _ ->
      if Random.State.bool st then C.Variadic (sub ()) else C.Optional (sub ())

let rand_slot st i : Resolve.slot =
  {
    s_name = Printf.sprintf "s%d" i;
    s_constraint = rand_constraint st 0;
    s_loc = Irdl_support.Loc.unknown;
  }

let rand_slots st = List.init (Random.State.int st 3) (rand_slot st)

let rand_dialect st i : Resolve.dialect =
  let typedef j : Resolve.typedef =
    {
      td_name = Printf.sprintf "t%d" j;
      td_params = rand_slots st;
      td_summary = (if Random.State.bool st then None else Some "summary");
      td_cpp = (if Random.State.bool st then [] else [ "cpp" ]);
      td_loc = Irdl_support.Loc.unknown;
    }
  in
  let opdef j : Resolve.op =
    {
      op_name = Printf.sprintf "op%d" j;
      op_summary = (if Random.State.bool st then None else Some "op summary");
      op_vars =
        (if Random.State.bool st then []
         else [ { C.v_name = "T"; v_constraint = rand_constraint st 0 } ]);
      op_operands = rand_slots st;
      op_results = rand_slots st;
      op_attributes = rand_slots st;
      op_regions =
        List.init (Random.State.int st 2) (fun k ->
            {
              Resolve.reg_name = Printf.sprintf "r%d" k;
              reg_args = rand_slots st;
              reg_terminator =
                (if Random.State.bool st then None else Some "d.ret");
            });
      op_successors =
        (match Random.State.int st 3 with
        | 0 -> None
        | 1 -> Some []
        | _ -> Some [ "next" ]);
      op_format = (if Random.State.bool st then None else Some "$s0 : $T");
      op_cpp = (if Random.State.bool st then [] else [ "hook" ]);
      op_loc = Irdl_support.Loc.unknown;
    }
  in
  let enums =
    List.init (Random.State.int st 2) (fun k ->
        {
          Irdl_core.Ast.e_name = Printf.sprintf "e%d" k;
          e_cases = [ "a"; "b" ];
          e_loc = Irdl_support.Loc.unknown;
        })
  in
  let name = Printf.sprintf "dl%d" i in
  {
    Resolve.dl_name = name;
    dl_types = List.init (Random.State.int st 3) typedef;
    dl_attrs = List.init (Random.State.int st 2) typedef;
    dl_ops = List.init (Random.State.int st 3) opdef;
    dl_enums = enums;
    dl_ast = { Irdl_core.Ast.d_name = name; d_items = []; d_loc = Irdl_support.Loc.unknown };
  }

let roundtrip_generated_dialects () =
  let st = Random.State.make [| 0xd1a1ec7 |] in
  for i = 1 to 1_000 do
    let dl = rand_dialect st i in
    let blob = check_ok "emit" (Bytecode.Write.dialects_to_string [ dl ]) in
    match check_ok "load" (Bytecode.read_dialects blob) with
    | [ dl' ] ->
        if not (Bytecode.Equal.dialect_eq dl dl') then
          Alcotest.failf "generated dialect %d did not round-trip" i
    | dls -> Alcotest.failf "expected 1 dialect, got %d" (List.length dls)
  done

(* A dialect pack loaded through the frontend is a working registry: the
   warm-start path. *)
let dialect_pack_registers () =
  let native = Irdl_core.Native.create () in
  Irdl_dialects.Cmath.register_hooks native;
  let dls = dialects_of_source "analyze cmath" Irdl_dialects.Cmath.source in
  let blob = check_ok "emit" (Bytecode.Write.dialects_to_string dls) in
  let c = ctx () in
  let loaded =
    check_ok "frontend load"
      (Frontend.load_dialects ~native c (Frontend.Source.classify blob))
  in
  Alcotest.(check int) "one dialect" 1 (List.length loaded);
  let op =
    parse_op c
      "%c = \"cmath.create_constant\"() {re = 1.0 : f32, im = 2.0 : f32} : () \
       -> !cmath.complex<f32>"
  in
  verify_ok c op

(* ---------------- corruption fuzz ---------------- *)

let sample_blobs () =
  let st = Random.State.make [| 0xfacade |] in
  let ops = rand_module st in
  let mblob = emit_ok "emit module" ops in
  let dblob =
    check_ok "emit dialects"
      (Bytecode.Write.dialects_to_string
         (dialects_of_source "analyze" Irdl_dialects.Cmath.source))
  in
  (mblob, dblob)

(* Every decode entry point, fail-fast and fail-soft, must return — with
   every reported diagnostic carrying a message — and never raise. *)
let never_crashes what blob =
  let attempt f =
    match f () with
    | exception e ->
        Alcotest.failf "%s: reader raised %s" what (Printexc.to_string e)
    | _ -> ()
  in
  attempt (fun () -> Bytecode.read_module (ctx ()) blob);
  attempt (fun () -> Bytecode.read_dialects blob);
  attempt (fun () -> Bytecode.documents blob);
  attempt (fun () ->
      let engine = Diag.Engine.create () in
      (match Bytecode.read_module ~engine (ctx ()) blob with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "%s: fail-soft read returned Error: %s" what
            (Diag.to_string d));
      List.iter
        (fun (d : Diag.t) ->
          if d.message = "" then Alcotest.failf "%s: empty diagnostic" what)
        (Diag.Engine.diagnostics engine));
  attempt (fun () ->
      let session = Bytecode.Stream.create (ctx ()) blob in
      let rec drain n =
        if n > 10_000 then Alcotest.failf "%s: stream did not terminate" what
        else
          match Bytecode.Stream.next session with
          | Ok None | Error _ -> ()
          | Ok (Some _) -> drain (n + 1)
      in
      drain 0)

let fuzz_truncations () =
  let mblob, dblob = sample_blobs () in
  List.iter
    (fun blob ->
      let n = String.length blob in
      for len = 0 to min n 64 do
        never_crashes "truncation" (String.sub blob 0 len)
      done;
      let st = Random.State.make [| 0x7a11 |] in
      for _ = 1 to 200 do
        never_crashes "truncation" (String.sub blob 0 (Random.State.int st n))
      done)
    [ mblob; dblob ]

let fuzz_bitflips () =
  let mblob, dblob = sample_blobs () in
  let st = Random.State.make [| 0xf11b |] in
  List.iter
    (fun blob ->
      let n = String.length blob in
      for _ = 1 to 300 do
        let b = Bytes.of_string blob in
        for _ = 1 to 1 + Random.State.int st 4 do
          let i = Random.State.int st n in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int st 8)))
        done;
        never_crashes "bit flip" (Bytes.to_string b)
      done)
    [ mblob; dblob ]

let fuzz_random_payloads () =
  let st = Random.State.make [| 0x5eed |] in
  for _ = 1 to 200 do
    (* Valid magic, garbage after: the adversarial half of the sniffer. *)
    let tail =
      String.init (Random.State.int st 120) (fun _ ->
          Char.chr (Random.State.int st 256))
    in
    never_crashes "random payload" (Bytecode.magic ^ tail)
  done

(* ---------------- frontend plumbing ---------------- *)

let source_sniffing () =
  let text = "%a = \"t.x\"() : () -> i32\n" in
  (match Frontend.Source.classify text with
  | Frontend.Source.Text _ -> ()
  | Frontend.Source.Binary _ -> Alcotest.fail "text misclassified");
  let blob = emit_ok "emit" [] in
  (match Frontend.Source.classify blob with
  | Frontend.Source.Binary _ -> ()
  | Frontend.Source.Text _ -> Alcotest.fail "bytecode misclassified");
  (* Chunking: text splits at // -----, bytecode at document boundaries. *)
  let two_docs = blob ^ blob in
  Alcotest.(check int)
    "bytecode chunks" 2
    (List.length
       (Frontend.Source.chunks ~split:true (Frontend.Source.classify two_docs)));
  Alcotest.(check int)
    "unsplit bytecode is one chunk" 1
    (List.length
       (Frontend.Source.chunks ~split:false (Frontend.Source.classify two_docs)))

let sink_matches_printer () =
  let c = cmath_ctx () in
  let src =
    "%c = \"cmath.create_constant\"() {re = 1.0 : f32, im = 2.0 : f32} : () \
     -> !cmath.complex<f32>\n\
     %m = \"cmath.mul\"(%c, %c) : (!cmath.complex<f32>, !cmath.complex<f32>) \
     -> !cmath.complex<f32>\n"
  in
  let ops = check_ok "parse" (Irdl_ir.Parser.parse_ops c src) in
  let sink = Frontend.Sink.text c in
  List.iter (Frontend.Sink.push sink) ops;
  let out = check_ok "sink close" (Frontend.Sink.close sink) in
  Alcotest.(check string)
    "sink output equals ops_to_string"
    (Irdl_ir.Printer.ops_to_string c ops)
    out;
  (* And the bytecode sink round-trips the same module. *)
  let sink = Frontend.Sink.bytecode () in
  List.iter (Frontend.Sink.push sink) ops;
  let blob = check_ok "bytecode sink close" (Frontend.Sink.close sink) in
  let ops' = load_ok "load" (ctx ()) blob in
  Alcotest.(check bool)
    "sink blob round-trips" true
    (Bytecode.Equal.module_eq ops ops')

let frontend_stream_dispatch () =
  let c = cmath_ctx () in
  let src = "%x = \"cmath.create_constant\"() {re = 1.0 : f32, im = 2.0 : f32} : () -> !cmath.complex<f32>\n" in
  let ops = check_ok "parse" (Irdl_ir.Parser.parse_ops c src) in
  let blob = emit_ok "emit" ops in
  List.iter
    (fun payload ->
      let s = Frontend.Stream.create c payload in
      match Frontend.Stream.next s with
      | Ok (Some op) ->
          Alcotest.(check string)
            "op name" "cmath.create_constant" (Graph.Op.name op);
          (match Frontend.Stream.next s with
          | Ok None -> ()
          | _ -> Alcotest.fail "expected end of stream")
      | _ -> Alcotest.fail "expected one op")
    [ Frontend.Source.Text src; Frontend.Source.classify blob ]

let suite =
  [
    tc "round-trip: generated graphs (1000)" roundtrip_generated_graphs;
    tc "round-trip: generated text modules" roundtrip_generated_text;
    tc "round-trip: corpus + cmath dialects" roundtrip_corpus_dialects;
    tc "round-trip: generated dialects (1000)" roundtrip_generated_dialects;
    tc "stream equals materialize" stream_equals_materialize;
    tc "stream skip semantics" skip_semantics;
    tc "multi-document buffers" multi_document;
    tc "writer: undefined value" writer_undefined_value;
    tc "writer: top-level successor" writer_toplevel_successor;
    tc "version and kind skew" version_skew;
    tc "compatibility window (v1 frozen, skew located)" compat_window;
    tc "dialect pack registers (warm start)" dialect_pack_registers;
    tc "fuzz: truncations" fuzz_truncations;
    tc "fuzz: bit flips" fuzz_bitflips;
    tc "fuzz: random payloads" fuzz_random_payloads;
    tc "frontend: source sniffing and chunks" source_sniffing;
    tc "frontend: sinks" sink_matches_printer;
    tc "frontend: stream dispatch" frontend_stream_dispatch;
  ]
