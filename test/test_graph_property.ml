(** Randomized structural property suite for the intrusive IR core.

    Each test case interprets a random program of mutations — append,
    splice (insert_before/insert_after), move across blocks, RAUW,
    set_operand, erase — against a two-block function, then asserts that

    - {!Graph.check_invariants} holds (intrusive links, counts, order
      indices, result/argument back-pointers, operand ↔ use-chain
      agreement), and
    - the result survives a print → parse → print round trip with
      byte-identical output. *)

open Irdl_ir

(* One mutation step, driven by four random ints. *)
type step = int * int * int * int

let step_gen =
  QCheck2.Gen.(quad (int_bound 1000) (int_bound 1000) (int_bound 1000) (int_bound 1000))

let program_gen = QCheck2.Gen.(list_size (int_range 0 60) step_gen)

(* Mutable interpreter state: the scope plus pools of attached ops and live
   values to pick mutation targets from. *)
type state = {
  blocks : Graph.block array;
  mutable ops : Graph.op list;  (** attached, in no particular order *)
  mutable values : Graph.value list;  (** block args + live op results *)
  mutable counter : int;
}

let pick lst n = List.nth lst (n mod List.length lst)

let build_scope () =
  let blocks =
    Array.init 2 (fun _ -> Graph.Block.create ~arg_tys:[ Attr.i32 ] ())
  in
  let region = Graph.Region.create ~blocks:(Array.to_list blocks) () in
  let scope = Graph.Op.create ~regions:[ region ] "t.func" in
  let st =
    {
      blocks;
      ops = [];
      values = Array.to_list blocks |> List.concat_map Graph.Block.args;
      counter = 0;
    }
  in
  (scope, st)

let fresh_op st x y =
  st.counter <- st.counter + 1;
  let operands =
    if st.values = [] then []
    else if x mod 3 = 0 then [ pick st.values y ]
    else [ pick st.values y; pick st.values (y / 7) ]
  in
  let attrs =
    if x mod 4 = 0 then [ ("k", Attr.int (Int64.of_int (x mod 16))) ] else []
  in
  Graph.Op.create ~operands ~result_tys:[ Attr.i32 ] ~attrs
    (Printf.sprintf "t.op%d" st.counter)

let register st op =
  st.ops <- op :: st.ops;
  st.values <- Graph.Op.results op @ st.values

let apply_step (st : state) ((c, x, y, z) : step) =
  match c mod 6 with
  | 0 ->
      (* append to a random block *)
      let op = fresh_op st x y in
      Graph.Block.append st.blocks.(z mod Array.length st.blocks) op;
      register st op
  | 1 ->
      (* splice next to a random existing op *)
      let op = fresh_op st x y in
      (match st.ops with
      | [] -> Graph.Block.append st.blocks.(0) op
      | _ -> (
          let anchor = pick st.ops z in
          match anchor.Graph.op_parent with
          | Some blk ->
              if z mod 2 = 0 then Graph.Block.insert_before blk ~anchor op
              else Graph.Block.insert_after blk ~anchor op
          | None -> Graph.Block.append st.blocks.(0) op));
      register st op
  | 2 ->
      (* replace-all-uses between two pooled values *)
      if st.values <> [] then
        Graph.Value.replace_all_uses ~from:(pick st.values x)
          ~to_:(pick st.values y)
  | 3 ->
      (* move an op to the end of another block *)
      if st.ops <> [] then begin
        let op = pick st.ops x in
        Graph.detach op;
        Graph.Block.append st.blocks.(y mod Array.length st.blocks) op
      end
  | 4 ->
      (* erase an op whose results are unused *)
      if st.ops <> [] then begin
        let op = pick st.ops x in
        if not (Array.exists Graph.Value.has_uses op.Graph.op_results) then begin
          Graph.erase op;
          st.ops <- List.filter (fun o -> o != op) st.ops;
          st.values <-
            List.filter
              (fun (v : Graph.value) ->
                match v.Graph.v_def with
                | Graph.Op_result { op = owner; _ } -> owner != op
                | _ -> true)
              st.values
        end
      end
  | _ ->
      (* set a random operand slot *)
      if st.ops <> [] && st.values <> [] then begin
        let op = pick st.ops x in
        let n = Graph.Op.num_operands op in
        if n > 0 then Graph.Op.set_operand op (y mod n) (pick st.values z)
      end

let run_program steps =
  let scope, st = build_scope () in
  List.iter (apply_step st) steps;
  scope

let invariants_after_mutations =
  QCheck2.Test.make ~name:"invariants survive random mutation sequences"
    ~count:300 program_gen (fun steps ->
      match Graph.check_invariants (run_program steps) with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_report msg)

let roundtrip_after_mutations =
  QCheck2.Test.make ~name:"mutated IR round-trips through print/parse"
    ~count:300 program_gen (fun steps ->
      let scope = run_program steps in
      let ctx = Context.create () in
      let printed = Printer.op_to_string ctx scope in
      match Parser.parse_op_string ctx printed with
      | Error d ->
          QCheck2.Test.fail_report
            ("reparse failed: " ^ Irdl_support.Diag.to_string d)
      | Ok reparsed -> (
          (* The reparsed module must satisfy the same invariants and print
             identically (names are assigned in emission order, so equal
             output means equal structure). *)
          match Graph.check_invariants reparsed with
          | Error msg ->
              QCheck2.Test.fail_report ("reparsed invariants: " ^ msg)
          | Ok () ->
              String.equal printed (Printer.op_to_string ctx reparsed)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ invariants_after_mutations; roundtrip_after_mutations ]
