(** Tests for the IR object graph. *)

open Irdl_ir
open Util

let create_op () =
  let op =
    Graph.Op.create ~result_tys:[ Attr.f32; Attr.i32 ] "test.op"
  in
  Alcotest.(check int) "results" 2 (Graph.Op.num_results op);
  Alcotest.(check int) "operands" 0 (Graph.Op.num_operands op);
  Alcotest.(check string) "dialect" "test" (Graph.Op.dialect op);
  Alcotest.(check string) "mnemonic" "op" (Graph.Op.mnemonic op);
  let r0 = Graph.Op.result op 0 in
  Alcotest.(check bool) "result ty" true
    (Attr.equal_ty Attr.f32 (Graph.Value.ty r0));
  match r0.v_def with
  | Graph.Op_result { op = owner; index } ->
      Alcotest.(check bool) "owner" true (owner == op);
      Alcotest.(check int) "index" 0 index
  | _ -> Alcotest.fail "expected Op_result"

let attrs_api () =
  let op = Graph.Op.create "test.op" in
  Alcotest.(check bool) "absent" true (Graph.Op.attr op "x" = None);
  Graph.Op.set_attr op "x" (Attr.int 1L);
  Alcotest.(check bool) "present" true (Graph.Op.attr op "x" <> None);
  Graph.Op.set_attr op "x" (Attr.int 2L);
  Alcotest.(check bool) "replaced" true
    (Graph.Op.attr op "x" = Some (Attr.int 2L));
  Alcotest.(check int) "no duplicate keys" 1 (List.length op.Graph.attrs);
  Graph.Op.remove_attr op "x";
  Alcotest.(check bool) "removed" true (Graph.Op.attr op "x" = None)

let block_ops_order () =
  let blk = Graph.Block.create () in
  let a = Graph.Op.create "t.a" and b = Graph.Op.create "t.b" in
  let c = Graph.Op.create "t.c" in
  Graph.Block.append blk a;
  Graph.Block.append blk c;
  Graph.Block.insert_before blk ~anchor:c b;
  Alcotest.(check (list string)) "order" [ "t.a"; "t.b"; "t.c" ]
    (List.map Graph.Op.name (Graph.Block.ops blk));
  (match Graph.Block.terminator blk with
  | Some t -> Alcotest.(check string) "terminator" "t.c" (Graph.Op.name t)
  | None -> Alcotest.fail "expected terminator");
  Graph.Block.remove blk b;
  Alcotest.(check (list string)) "after remove" [ "t.a"; "t.c" ]
    (List.map Graph.Op.name (Graph.Block.ops blk));
  Alcotest.(check bool) "detached" true (b.Graph.op_parent = None)

let double_attach_rejected () =
  let blk = Graph.Block.create () in
  let blk2 = Graph.Block.create () in
  let a = Graph.Op.create "t.a" in
  Graph.Block.append blk a;
  Alcotest.(check bool) "raises" true
    (try
       Graph.Block.append blk2 a;
       false
     with Invalid_argument _ -> true)

let block_args () =
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32 ] () in
  Alcotest.(check int) "one arg" 1 (List.length (Graph.Block.args blk));
  let v = Graph.Block.add_arg blk Attr.f32 in
  Alcotest.(check int) "two args" 2 (List.length (Graph.Block.args blk));
  match v.v_def with
  | Graph.Block_arg { index; _ } -> Alcotest.(check int) "index" 1 index
  | _ -> Alcotest.fail "expected Block_arg"

let region_structure () =
  let b1 = Graph.Block.create () and b2 = Graph.Block.create () in
  let r = Graph.Region.create ~blocks:[ b1 ] () in
  Graph.Region.add_block r b2;
  Alcotest.(check int) "blocks" 2 (Graph.Region.num_blocks r);
  (match Graph.Region.entry r with
  | Some e -> Alcotest.(check bool) "entry" true (e == b1)
  | None -> Alcotest.fail "expected entry");
  let op = Graph.Op.create ~regions:[ r ] "t.wrap" in
  match r.Graph.reg_parent with
  | Some p -> Alcotest.(check bool) "region parent" true (p == op)
  | None -> Alcotest.fail "expected parent"

let walk_nested () =
  let inner = Graph.Op.create "t.inner" in
  let blk = Graph.Block.create () in
  Graph.Block.append blk inner;
  let region = Graph.Region.create ~blocks:[ blk ] () in
  let outer = Graph.Op.create ~regions:[ region ] "t.outer" in
  let seen = ref [] in
  Graph.Op.walk outer ~f:(fun o -> seen := Graph.Op.name o :: !seen);
  Alcotest.(check (list string)) "preorder" [ "t.outer"; "t.inner" ]
    (List.rev !seen)

let parent_chain () =
  let inner = Graph.Op.create "t.inner" in
  let blk = Graph.Block.create () in
  Graph.Block.append blk inner;
  let region = Graph.Region.create ~blocks:[ blk ] () in
  let outer = Graph.Op.create ~regions:[ region ] "t.outer" in
  (match Graph.Op.parent_op inner with
  | Some p -> Alcotest.(check string) "parent" "t.outer" (Graph.Op.name p)
  | None -> Alcotest.fail "expected parent");
  Alcotest.(check bool) "ancestor" true
    (Graph.Op.is_ancestor ~ancestor:outer inner);
  Alcotest.(check bool) "self ancestor" true
    (Graph.Op.is_ancestor ~ancestor:inner inner);
  Alcotest.(check bool) "not ancestor" false
    (Graph.Op.is_ancestor ~ancestor:inner outer)

let replace_uses () =
  let def1 = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def1" in
  let def2 = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def2" in
  let v1 = Graph.Op.result def1 0 and v2 = Graph.Op.result def2 0 in
  let user = Graph.Op.create ~operands:[ v1; v1 ] "t.use" in
  let blk = Graph.Block.create () in
  List.iter (Graph.Block.append blk) [ def1; def2; user ];
  let region = Graph.Region.create ~blocks:[ blk ] () in
  let scope = Graph.Op.create ~regions:[ region ] "t.scope" in
  Alcotest.(check bool) "v1 used" true (Graph.has_uses_in scope v1);
  Graph.replace_uses_in scope ~from:v1 ~to_:v2;
  Alcotest.(check bool) "v1 unused" false (Graph.has_uses_in scope v1);
  Alcotest.(check bool) "v2 used" true (Graph.has_uses_in scope v2);
  Alcotest.(check bool) "both operands" true
    (List.for_all (Graph.Value.equal v2) (Graph.Op.operands user))

let value_defining_op () =
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let v = Graph.Op.result def 0 in
  (match Graph.Value.defining_op v with
  | Some o -> Alcotest.(check string) "def op" "t.def" (Graph.Op.name o)
  | None -> Alcotest.fail "expected defining op");
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32 ] () in
  let arg = List.hd (Graph.Block.args blk) in
  Alcotest.(check bool) "block arg has no def op" true
    (Graph.Value.defining_op arg = None)

let unique_ids () =
  let a = Graph.Op.create "t.a" and b = Graph.Op.create "t.b" in
  Alcotest.(check bool) "distinct" true (a.Graph.op_id <> b.Graph.op_id)

let detach_op () =
  let blk = Graph.Block.create () in
  let op = Graph.Op.create "t.a" in
  Graph.Block.append blk op;
  Graph.detach op;
  Alcotest.(check int) "block empty" 0 (List.length (Graph.Block.ops blk));
  (* detaching twice is a no-op *)
  Graph.detach op

let use_chain_tracking () =
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let other = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.other" in
  let v = Graph.Op.result def 0 and w = Graph.Op.result other 0 in
  Alcotest.(check bool) "fresh unused" false (Graph.Value.has_uses v);
  let u1 = Graph.Op.create ~operands:[ v; v ] "t.u1" in
  let u2 = Graph.Op.create ~operands:[ v ] "t.u2" in
  Alcotest.(check int) "three uses" 3 (Graph.Value.num_uses v);
  Alcotest.(check bool) "all owners recorded" true
    (List.for_all
       (fun (o, _) -> o == u1 || o == u2)
       (Graph.Value.uses v));
  Graph.Op.set_operand u2 0 w;
  Alcotest.(check int) "two uses after set_operand" 2 (Graph.Value.num_uses v);
  Alcotest.(check int) "w picked one up" 1 (Graph.Value.num_uses w);
  Graph.Op.set_operands u1 [ w ];
  Alcotest.(check bool) "v unused" false (Graph.Value.has_uses v);
  Alcotest.(check int) "w has both" 2 (Graph.Value.num_uses w)

let replace_all_uses () =
  let def1 = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def1" in
  let def2 = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def2" in
  let v1 = Graph.Op.result def1 0 and v2 = Graph.Op.result def2 0 in
  let users =
    List.init 3 (fun _ -> Graph.Op.create ~operands:[ v1; v1 ] "t.use")
  in
  Alcotest.(check int) "six uses" 6 (Graph.Value.num_uses v1);
  Graph.Value.replace_all_uses ~from:v1 ~to_:v2;
  Alcotest.(check bool) "v1 dropped" false (Graph.Value.has_uses v1);
  Alcotest.(check int) "v2 adopted" 6 (Graph.Value.num_uses v2);
  List.iter
    (fun u ->
      Alcotest.(check bool) "operands rewired" true
        (List.for_all (Graph.Value.equal v2) (Graph.Op.operands u)))
    users;
  (* replacing a value by itself is a no-op *)
  Graph.Value.replace_all_uses ~from:v2 ~to_:v2;
  Alcotest.(check int) "self-replace keeps uses" 6 (Graph.Value.num_uses v2)

let erase_drops_uses () =
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let v = Graph.Op.result def 0 in
  (* A user nested one region deep, so erase must recurse. *)
  let inner_user = Graph.Op.create ~operands:[ v ] "t.inner" in
  let blk = Graph.Block.create () in
  Graph.Block.append blk inner_user;
  let wrap =
    Graph.Op.create
      ~regions:[ Graph.Region.create ~blocks:[ blk ] () ]
      ~operands:[ v ] "t.wrap"
  in
  let top = Graph.Block.create () in
  Graph.Block.append top def;
  Graph.Block.append top wrap;
  Alcotest.(check int) "two uses" 2 (Graph.Value.num_uses v);
  Graph.erase wrap;
  Alcotest.(check bool) "v unused after erase" false (Graph.Value.has_uses v);
  Alcotest.(check int) "block shrunk" 1 (Graph.Block.num_ops top);
  (* detach, by contrast, keeps the use links *)
  let user = Graph.Op.create ~operands:[ v ] "t.user" in
  Graph.Block.append top user;
  Graph.detach user;
  Alcotest.(check bool) "detach keeps uses" true (Graph.Value.has_uses v)

let insert_after_and_order () =
  let blk = Graph.Block.create () in
  let a = Graph.Op.create "t.a" and b = Graph.Op.create "t.b" in
  let c = Graph.Op.create "t.c" in
  Graph.Block.append blk a;
  Graph.Block.append blk c;
  Graph.Block.insert_after blk ~anchor:a b;
  Alcotest.(check (list string)) "order" [ "t.a"; "t.b"; "t.c" ]
    (List.map Graph.Op.name (Graph.Block.ops blk));
  Alcotest.(check bool) "a before b" true (Graph.Op.is_before_in_block a b);
  Alcotest.(check bool) "c not before b" false
    (Graph.Op.is_before_in_block c b);
  Alcotest.(check int) "num_ops" 3 (Graph.Block.num_ops blk);
  (match Graph.Block.first_op blk with
  | Some f -> Alcotest.(check string) "first" "t.a" (Graph.Op.name f)
  | None -> Alcotest.fail "expected first op")

let order_renumbering () =
  (* Repeated insertion at the same point exhausts midpoint gaps and forces
     block renumbering; ordering must survive. *)
  let blk = Graph.Block.create () in
  let first = Graph.Op.create "t.first" and last = Graph.Op.create "t.last" in
  Graph.Block.append blk first;
  Graph.Block.append blk last;
  for i = 1 to 200 do
    Graph.Block.insert_before blk ~anchor:last
      (Graph.Op.create (Printf.sprintf "t.n%d" i))
  done;
  Alcotest.(check int) "count" 202 (Graph.Block.num_ops blk);
  let names = List.map Graph.Op.name (Graph.Block.ops blk) in
  Alcotest.(check string) "first stays" "t.first" (List.hd names);
  Alcotest.(check string) "last stays" "t.last"
    (List.nth names (List.length names - 1));
  (* Orders strictly increasing along the block. *)
  let prev = ref min_int in
  Graph.Block.iter_ops blk ~f:(fun o ->
      Alcotest.(check bool) "strictly increasing" true (o.Graph.op_order > !prev);
      prev := o.Graph.op_order)

let invariants_hold () =
  let def = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.def" in
  let user = Graph.Op.create ~operands:[ Graph.Op.result def 0 ] "t.use" in
  let blk = Graph.Block.create ~arg_tys:[ Attr.f32 ] () in
  Graph.Block.append blk def;
  Graph.Block.append blk user;
  let func =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"
  in
  (match Graph.check_invariants func with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants violated: %s" m);
  (* Corrupt a use chain head and expect the checker to notice. *)
  (Graph.Op.result def 0).Graph.v_first_use <- None;
  match Graph.check_invariants func with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error _ -> ()

let deep_nesting_stack_safe () =
  (* ~50k nested regions: walk, invariant checking, verification and
     printing must all stay iterative (no stack overflow). *)
  let depth = 50_000 in
  let op = ref (Graph.Op.create "t.leaf") in
  for _ = 1 to depth do
    let blk = Graph.Block.create () in
    Graph.Block.append blk !op;
    op := Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.nest"
  done;
  let root = !op in
  let count = ref 0 in
  Graph.Op.walk root ~f:(fun _ -> incr count);
  Alcotest.(check int) "walk count" (depth + 1) !count;
  (match Graph.check_invariants root with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  let ctx = Context.create () in
  (match Verifier.verify ctx root with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "verify: %s" (Irdl_support.Diag.to_string d));
  let printed = Printer.op_to_string ctx root in
  Alcotest.(check bool) "printed" true (String.length printed > depth)

let atomic_ids_across_domains () =
  let per_domain = 20_000 in
  let gen () = Array.init per_domain (fun _ -> Graph.next_id ()) in
  let domains = List.init 4 (fun _ -> Domain.spawn gen) in
  let ids = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let tbl = Hashtbl.create (4 * per_domain) in
  List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
  Alcotest.(check int) "all distinct" (4 * per_domain) (Hashtbl.length tbl)

let suite =
  [
    tc "op creation wires results" create_op;
    tc "attribute get/set/remove" attrs_api;
    tc "block op order and insertion" block_ops_order;
    tc "double attachment rejected" double_attach_rejected;
    tc "block arguments" block_args;
    tc "region structure" region_structure;
    tc "walk visits nested ops preorder" walk_nested;
    tc "parent chain and ancestry" parent_chain;
    tc "replace_uses_in rewrites operands" replace_uses;
    tc "value defining op" value_defining_op;
    tc "ids are unique" unique_ids;
    tc "detach" detach_op;
    tc "use chains track operand mutation" use_chain_tracking;
    tc "replace_all_uses is exhaustive" replace_all_uses;
    tc "erase drops nested operand uses" erase_drops_uses;
    tc "insert_after and O(1) ordering" insert_after_and_order;
    tc "order survives renumbering" order_renumbering;
    tc "invariant checker accepts and detects" invariants_hold;
    tc "50k nested regions stay stack-safe" deep_nesting_stack_safe;
    tc "atomic ids across domains" atomic_ids_across_domains;
  ]
