(* The resident service: wire framing, request handling, budgets, fault
   injection, serve-loop semantics, and the soak gate.

   The soak test drives a mixed stream of well-formed, malformed,
   over-budget and fault-poisoned requests (IRDL_SOAK_N of them, default
   10_000) through [Server.serve_fd] over real file descriptors and checks
   that every single request is answered, in order, with the structured
   status its class predicts — no crash, no hang, no dropped response. *)

open Util
module Limits = Irdl_support.Limits
module Failpoints = Irdl_support.Failpoints
module Diag = Irdl_support.Diag
module Context = Irdl_ir.Context
module Wire = Irdl_server.Wire
module Server = Irdl_server.Server

(* ---------------------------------------------------------------- *)
(* Wire framing                                                      *)
(* ---------------------------------------------------------------- *)

let wire_header_roundtrip () =
  let kvs = [ ("id", "42"); ("kind", "verify"); ("file", "a b=c.mlir") ] in
  let decoded = Wire.decode_header (Wire.encode_header kvs) in
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) k (Some v) (Wire.header_get decoded k))
    kvs;
  (* Later duplicates win; malformed lines are dropped. *)
  let d = Wire.decode_header "id=1\nnonsense\nid=2\n" in
  Alcotest.(check (option string)) "last id wins" (Some "2")
    (Wire.header_get d "id");
  Alcotest.(check int) "malformed line dropped" 2 (List.length d);
  (match Wire.encode_header [ ("k", "v\n") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "newline in value must be rejected")

let feed_slowly r s =
  String.iter (fun c -> Wire.feed r (String.make 1 c)) s

let wire_reader_reassembles () =
  let r = Wire.reader () in
  let f1 = Wire.encode_request ~header:[ ("id", "1") ] ~payload:"aaa" in
  let f2 = Wire.encode_request ~header:[ ("id", "2") ] ~payload:"" in
  (* Byte-at-a-time arrival, two frames back to back. *)
  feed_slowly r (f1 ^ f2);
  (match Wire.poll r with
  | Some (Wire.Frame { header; payload; oversized }) ->
      Alcotest.(check (option string)) "id 1" (Some "1")
        (Wire.header_get header "id");
      Alcotest.(check string) "payload" "aaa" payload;
      Alcotest.(check bool) "not oversized" false oversized
  | _ -> Alcotest.fail "expected frame 1");
  (match Wire.poll r with
  | Some (Wire.Frame { header; _ }) ->
      Alcotest.(check (option string)) "id 2" (Some "2")
        (Wire.header_get header "id")
  | _ -> Alcotest.fail "expected frame 2");
  Alcotest.(check bool) "drained" true (Wire.poll r = None)

let wire_reader_oversized_discard () =
  let cap = 64 in
  let r = Wire.reader ~max_payload:cap () in
  let big = String.make 100_000 'x' in
  let frame = Wire.encode_request ~header:[ ("id", "big") ] ~payload:big in
  (* Feed in 1 KiB chunks; the buffer must stay bounded by one chunk plus
     the frame prefix — the declared 100 KB payload is never accumulated. *)
  let chunk = 1024 in
  let i = ref 0 in
  while !i < String.length frame do
    let n = min chunk (String.length frame - !i) in
    Wire.feed r (String.sub frame !i n);
    Alcotest.(check bool)
      (Printf.sprintf "buffer bounded at offset %d" !i)
      true
      (Wire.buffered r <= chunk + 16);
    i := !i + n
  done;
  (match Wire.poll r with
  | Some (Wire.Frame { header; payload; oversized }) ->
      Alcotest.(check bool) "flagged oversized" true oversized;
      Alcotest.(check string) "payload dropped" "" payload;
      Alcotest.(check (option string)) "header still decoded" (Some "big")
        (Wire.header_get header "id")
  | _ -> Alcotest.fail "expected an oversized frame");
  (* The reader resynchronized: a normal frame after the discard parses. *)
  Wire.feed r (Wire.encode_request ~header:[ ("id", "after") ] ~payload:"ok");
  match Wire.poll r with
  | Some (Wire.Frame { payload = "ok"; oversized = false; _ }) -> ()
  | _ -> Alcotest.fail "expected the post-discard frame"

let wire_reader_corrupt_is_sticky () =
  let r = Wire.reader () in
  Wire.feed r "GARBAGE_that_is_long_enough";
  (match Wire.poll r with
  | Some (Wire.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected corrupt");
  Wire.feed r (Wire.encode_request ~header:[] ~payload:"");
  match Wire.poll r with
  | Some (Wire.Corrupt _) -> ()
  | _ -> Alcotest.fail "corrupt must be sticky"

(* ---------------------------------------------------------------- *)
(* Request decoding                                                  *)
(* ---------------------------------------------------------------- *)

let parse_request_cases () =
  (match
     Server.parse_request
       ~header:
         [ ("id", "7"); ("kind", "verify"); ("file", "x.mlir");
           ("max-ops", "10") ]
       ~payload:"p"
   with
  | Ok rq ->
      Alcotest.(check string) "id" "7" rq.Server.rq_id;
      Alcotest.(check bool) "kind" true (rq.Server.rq_kind = Server.Verify);
      Alcotest.(check string) "file" "x.mlir" rq.Server.rq_file;
      Alcotest.(check int) "max-ops" 10 rq.Server.rq_limits.Limits.max_ops
  | Error _ -> Alcotest.fail "well-formed request rejected");
  let expect_invalid what header =
    match Server.parse_request ~header ~payload:"" with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error rs ->
        Alcotest.(check bool) what true
          (rs.Server.rs_status = Server.Invalid_request)
  in
  expect_invalid "missing kind" [ ("id", "1") ];
  expect_invalid "unknown kind" [ ("kind", "frobnicate") ];
  expect_invalid "bad integer" [ ("kind", "parse"); ("max-ops", "many") ]

(* ---------------------------------------------------------------- *)
(* Handling and classification                                       *)
(* ---------------------------------------------------------------- *)

let frozen_cmath_ctx () =
  let ctx = cmath_ctx () in
  Context.freeze ctx;
  ctx

let req ?(id = "1") ?(file = "req.mlir") ?(limits = Limits.unlimited) kind
    payload =
  {
    Server.rq_id = id;
    rq_kind = kind;
    rq_file = file;
    rq_limits = limits;
    rq_payload = payload;
  }

let good_ir = {|%c = "t.cast"() : () -> (!cmath.complex<f32>)
%n = "cmath.norm"(%c) : (!cmath.complex<f32>) -> (f32)
|}

let bad_parse_ir = "%x = \"t.oops\"( : () -> (i32)\n"

let bad_verify_ir = {|%c = "t.cast"() : () -> (!cmath.complex<f32>)
%n = "cmath.norm"(%c) : (!cmath.complex<f32>) -> (i32)
|}

let check_status what expected rs =
  Alcotest.(check string)
    what
    (Server.status_to_string expected)
    (Server.status_to_string rs.Server.rs_status)

let handle_classification () =
  let ctx = frozen_cmath_ctx () in
  let cfg = Server.default_config in
  check_status "ping" Server.Ok_ (Server.handle ctx cfg (req Server.Ping ""));
  let stats = Server.handle ctx cfg (req Server.Stats "") in
  check_status "stats" Server.Ok_ stats;
  Alcotest.(check bool) "stats lists cmath" true
    (String.length stats.Server.rs_output > 0);
  check_status "parse ok" Server.Ok_
    (Server.handle ctx cfg (req Server.Parse good_ir));
  let printed = Server.handle ctx cfg (req Server.Print good_ir) in
  check_status "print ok" Server.Ok_ printed;
  Alcotest.(check bool) "print has output" true
    (String.length printed.Server.rs_output > 0);
  let pe = Server.handle ctx cfg (req Server.Verify bad_parse_ir) in
  check_status "parse error" Server.Parse_error pe;
  Alcotest.(check bool) "parse error diags rendered" true
    (String.length pe.Server.rs_diags > 0);
  Alcotest.(check bool) "error counted" true (pe.Server.rs_errors > 0);
  let ve = Server.handle ctx cfg (req Server.Verify bad_verify_ir) in
  check_status "verify error" Server.Verify_error ve;
  (* A parse-only request does not verify: the verify-broken module is ok. *)
  check_status "parse skips verification" Server.Ok_
    (Server.handle ctx cfg (req Server.Parse bad_verify_ir))

let handle_budgets () =
  let ctx = frozen_cmath_ctx () in
  let cfg = Server.default_config in
  let tight = Limits.create ~max_ops:1 () in
  let rs = Server.handle ctx cfg (req ~limits:tight Server.Verify good_ir) in
  check_status "op budget" Server.Resource_exhausted rs;
  Alcotest.(check bool) "budget diag rendered" true
    (String.length rs.Server.rs_diags > 0);
  (* The server ceiling applies even when the request asks for more. *)
  let ceiling = { cfg with Server.limits = Limits.create ~max_ops:1 () } in
  let loose = Limits.create ~max_ops:1000 () in
  check_status "server ceiling wins" Server.Resource_exhausted
    (Server.handle ctx ceiling (req ~limits:loose Server.Verify good_ir));
  (* An already-expired deadline surfaces as deadline_exceeded, and
     outranks the parse error the abort interrupts. *)
  let expired = { Limits.unlimited with Limits.deadline_ns = 1L } in
  check_status "expired deadline" Server.Deadline_exceeded
    (Server.handle ctx cfg (req ~limits:expired Server.Verify bad_parse_ir));
  (* Payload cap, request-side. *)
  let small = Limits.create ~max_payload_bytes:8 () in
  check_status "payload cap" Server.Resource_exhausted
    (Server.handle ctx cfg (req ~limits:small Server.Verify good_ir))

let handle_injected_isolation () =
  let ctx = frozen_cmath_ctx () in
  let cfg = Server.default_config in
  Alcotest.(check bool) "configure" true
    (Result.is_ok (Failpoints.configure "pool.task:2"));
  Fun.protect ~finally:Failpoints.clear @@ fun () ->
  (* Every 2nd request is poisoned; its neighbours are untouched. *)
  let statuses =
    List.init 6 (fun i ->
        (Server.handle ctx cfg (req ~id:(string_of_int i) Server.Verify good_ir))
          .Server.rs_status)
  in
  let injected =
    List.length (List.filter (fun s -> s = Server.Internal_error) statuses)
  in
  let ok = List.length (List.filter (fun s -> s = Server.Ok_) statuses) in
  Alcotest.(check int) "3 of 6 poisoned" 3 injected;
  Alcotest.(check int) "3 of 6 clean" 3 ok;
  Alcotest.(check int) "injections counted" 3
    (Failpoints.injected_count "pool.task")

(* ---------------------------------------------------------------- *)
(* Serve loop over real file descriptors                             *)
(* ---------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "irdl_server_test" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () -> f path

let encode_req ~id ~kind ?(extra = []) payload =
  Wire.encode_request
    ~header:([ ("id", id); ("kind", kind); ("file", id ^ ".mlir") ] @ extra)
    ~payload

(* Split a byte string of concatenated response frames. *)
let decode_responses s =
  let u32 off =
    (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]
  in
  let rec go off acc =
    if off = String.length s then List.rev acc
    else begin
      Alcotest.(check string)
        "response magic" Wire.response_magic
        (String.sub s off 4);
      let hlen = u32 (off + 4) and dlen = u32 (off + 8) and olen = u32 (off + 12) in
      let total = 16 + hlen + dlen + olen in
      match Wire.decode_response (String.sub s off total) with
      | Error e -> Alcotest.failf "undecodable response: %s" e
      | Ok (header, diags, output) -> (
          match Server.response_of_wire ~header ~diags ~output with
          | Error e -> Alcotest.failf "bad response: %s" e
          | Ok rs -> go (off + total) (rs :: acc))
    end
  in
  go 0 []

(* Run [serve_fd] with [requests] pre-written to a file (always readable,
   EOF at the end — every request must be answered) and return the decoded
   responses. *)
let serve_over_files ?config ctx requests =
  with_temp_file @@ fun in_path ->
  with_temp_file @@ fun out_path ->
  let oc = open_out_bin in_path in
  List.iter (output_string oc) requests;
  close_out oc;
  let in_fd = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let answered =
    Fun.protect
      ~finally:(fun () ->
        Unix.close in_fd;
        Unix.close out_fd)
      (fun () -> Server.serve_fd ?config ctx ~in_fd ~out_fd ())
  in
  let ic = open_in_bin out_path in
  let out =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (answered, decode_responses out)

let serve_fd_end_to_end () =
  Server.reset_shutdown ();
  let ctx = cmath_ctx () in
  let requests =
    [
      encode_req ~id:"1" ~kind:"ping" "";
      encode_req ~id:"2" ~kind:"print" good_ir;
      encode_req ~id:"3" ~kind:"verify" bad_verify_ir;
      encode_req ~id:"4" ~kind:"verify" bad_parse_ir;
      encode_req ~id:"5" ~kind:"verify" ~extra:[ ("max-ops", "1") ] good_ir;
      encode_req ~id:"6" ~kind:"bogus-kind" "";
      encode_req ~id:"7" ~kind:"stats" "";
    ]
  in
  let answered, responses = serve_over_files ctx requests in
  Alcotest.(check int) "all answered" 7 answered;
  Alcotest.(check int) "all written" 7 (List.length responses);
  Alcotest.(check (list string))
    "responses in arrival order"
    [ "1"; "2"; "3"; "4"; "5"; "6"; "7" ]
    (List.map (fun r -> r.Server.rs_id) responses);
  let status id =
    (List.find (fun r -> r.Server.rs_id = id) responses).Server.rs_status
  in
  Alcotest.(check bool) "ping ok" true (status "1" = Server.Ok_);
  Alcotest.(check bool) "print ok" true (status "2" = Server.Ok_);
  Alcotest.(check bool) "verify error" true (status "3" = Server.Verify_error);
  Alcotest.(check bool) "parse error" true (status "4" = Server.Parse_error);
  Alcotest.(check bool) "budget" true (status "5" = Server.Resource_exhausted);
  Alcotest.(check bool) "invalid" true (status "6" = Server.Invalid_request);
  Alcotest.(check bool) "stats ok" true (status "7" = Server.Ok_)

let serve_fd_oversized_and_corrupt () =
  Server.reset_shutdown ();
  let ctx = cmath_ctx () in
  let config =
    {
      Server.default_config with
      Server.limits = Limits.create ~max_payload_bytes:64 ();
    }
  in
  let big = String.make 10_000 'z' in
  let answered, responses =
    serve_over_files ~config ctx
      [
        encode_req ~id:"1" ~kind:"verify" big;
        encode_req ~id:"2" ~kind:"ping" "";
        "NOT A FRAME AT ALL";
      ]
  in
  Alcotest.(check int) "both requests + corrupt notice" 3 answered;
  match responses with
  | [ r1; r2; r3 ] ->
      Alcotest.(check string) "oversized answered by id" "1" r1.Server.rs_id;
      Alcotest.(check bool) "oversized is resource_exhausted" true
        (r1.Server.rs_status = Server.Resource_exhausted);
      Alcotest.(check bool) "later request unaffected" true
        (r2.Server.rs_status = Server.Ok_);
      Alcotest.(check bool) "corrupt tail answered invalid_request" true
        (r3.Server.rs_status = Server.Invalid_request)
  | _ -> Alcotest.fail "expected exactly 3 responses"

let serve_fd_sheds_over_max_queue () =
  Server.reset_shutdown ();
  let ctx = cmath_ctx () in
  let config = { Server.default_config with Server.max_queue = 2 } in
  let requests =
    List.init 5 (fun i ->
        encode_req ~id:(string_of_int (i + 1)) ~kind:"verify" good_ir)
  in
  let answered, responses = serve_over_files ~config ctx requests in
  Alcotest.(check int) "every request answered" 5 answered;
  let shed =
    List.filter (fun r -> r.Server.rs_status = Server.Retry_later) responses
  in
  Alcotest.(check int) "burst beyond the window shed" 3 (List.length shed);
  List.iter
    (fun r ->
      match r.Server.rs_retry_after_ms with
      | Some ms -> Alcotest.(check bool) "retry hint positive" true (ms > 0)
      | None -> Alcotest.fail "shed response carries retry-after-ms")
    shed

let serve_fd_drains_on_shutdown_request () =
  Server.reset_shutdown ();
  Fun.protect ~finally:Server.reset_shutdown @@ fun () ->
  let ctx = cmath_ctx () in
  let requests =
    [
      encode_req ~id:"1" ~kind:"verify" good_ir;
      encode_req ~id:"2" ~kind:"shutdown" "";
      encode_req ~id:"3" ~kind:"verify" good_ir;
    ]
  in
  let answered, responses = serve_over_files ctx requests in
  (* Everything accepted before the loop observed the shutdown — here the
     whole burst, it arrived in one read — is still answered. *)
  Alcotest.(check int) "accepted requests drained" 3 answered;
  Alcotest.(check bool) "shutdown answered ok" true
    ((List.nth responses 1).Server.rs_status = Server.Ok_);
  Alcotest.(check bool) "flag raised" true (Server.shutdown_requested ())

(* ---------------------------------------------------------------- *)
(* Socket listener + client                                          *)
(* ---------------------------------------------------------------- *)

let serve_unix_roundtrip () =
  Server.reset_shutdown ();
  Fun.protect ~finally:Server.reset_shutdown @@ fun () ->
  let ctx = cmath_ctx () in
  let path = Filename.temp_file "irdl_server" ".sock" in
  Sys.remove path;
  let config = { Server.default_config with Server.domains = 2 } in
  let srv = Domain.spawn (fun () -> Server.serve_unix ~config ctx ~path ()) in
  (* Wait for the listener to bind. *)
  let rec await n =
    if n = 0 then Alcotest.fail "socket never appeared";
    if not (Sys.file_exists path) then begin
      Unix.sleepf 0.01;
      await (n - 1)
    end
  in
  await 500;
  (match Server.roundtrip ~path ~kind:Server.Ping "" with
  | Ok rs -> Alcotest.(check bool) "ping ok" true (rs.Server.rs_status = Server.Ok_)
  | Error e -> Alcotest.failf "ping failed: %s" e);
  (match Server.roundtrip ~path ~kind:Server.Print ~file:"rt.mlir" good_ir with
  | Ok rs ->
      Alcotest.(check bool) "print ok" true (rs.Server.rs_status = Server.Ok_);
      Alcotest.(check bool) "print output" true
        (String.length rs.Server.rs_output > 0)
  | Error e -> Alcotest.failf "print failed: %s" e);
  (match
     Server.roundtrip ~path ~kind:Server.Verify ~file:"rt.mlir" bad_verify_ir
   with
  | Ok rs ->
      Alcotest.(check bool) "verify error over socket" true
        (rs.Server.rs_status = Server.Verify_error);
      Alcotest.(check bool) "diagnostics over socket" true
        (String.length rs.Server.rs_diags > 0)
  | Error e -> Alcotest.failf "verify failed: %s" e);
  (match Server.roundtrip ~path ~kind:Server.Shutdown "" with
  | Ok rs ->
      Alcotest.(check bool) "shutdown ok" true (rs.Server.rs_status = Server.Ok_)
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  let answered = Domain.join srv in
  Alcotest.(check bool) "server answered everything" true (answered >= 4);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists path)

(* ---------------------------------------------------------------- *)
(* Soak                                                              *)
(* ---------------------------------------------------------------- *)

let soak_n () =
  match Sys.getenv_opt "IRDL_SOAK_N" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000)
  | None -> 10_000

(* Request class by index; every class has a deterministic expected
   status, except that any module-processing request may additionally be
   poisoned by the armed failpoint (every 97th pool task) — in which case
   internal_error is the correct answer for exactly that request. *)
let soak_kind i =
  match i mod 5 with
  | 0 -> ("print", good_ir, Server.Ok_)
  | 1 -> ("verify", good_ir, Server.Ok_)
  | 2 -> ("verify", bad_parse_ir, Server.Parse_error)
  | 3 -> ("verify", bad_verify_ir, Server.Verify_error)
  | _ -> ("parse", good_ir, Server.Ok_)

let soak () =
  Server.reset_shutdown ();
  let n = soak_n () in
  let ctx = cmath_ctx () in
  Alcotest.(check bool) "arm failpoint" true
    (Result.is_ok (Failpoints.configure "pool.task:97"));
  Fun.protect ~finally:Failpoints.clear @@ fun () ->
  let requests =
    List.init n (fun i ->
        let kind, payload, _ = soak_kind i in
        (* A 1-op budget only blows on the 2-op payloads; the malformed
           single-op payload of class 2 parse-fails before the budget can. *)
        let extra =
          if i mod 23 = 11 && i mod 5 <> 2 then [ ("max-ops", "1") ] else []
        in
        encode_req ~id:(string_of_int i) ~kind ~extra payload)
  in
  let config = { Server.default_config with Server.domains = 4 } in
  let answered, responses = serve_over_files ~config ctx requests in
  Alcotest.(check int) "every request answered" n answered;
  Alcotest.(check int) "every response written" n (List.length responses);
  let injected = ref 0 in
  List.iteri
    (fun i rs ->
      Alcotest.(check string)
        (Printf.sprintf "response %d in order" i)
        (string_of_int i) rs.Server.rs_id;
      let _, _, expected = soak_kind i in
      let expected =
        if i mod 23 = 11 && i mod 5 <> 2 then Server.Resource_exhausted
        else expected
      in
      if rs.Server.rs_status = Server.Internal_error then incr injected
      else
        Alcotest.(check string)
          (Printf.sprintf "request %d status" i)
          (Server.status_to_string expected)
          (Server.status_to_string rs.Server.rs_status))
    responses;
  (* The armed failpoint fired — and poisoned only its own requests. *)
  if n >= 97 then
    Alcotest.(check bool) "some requests were poisoned" true (!injected > 0);
  Alcotest.(check int)
    "every injection became one internal_error response"
    (Failpoints.injected_count "pool.task")
    !injected

let suite =
  [
    tc "wire: header round-trip" wire_header_roundtrip;
    tc "wire: reader reassembles split frames" wire_reader_reassembles;
    tc "wire: oversized payload discarded, bounded" wire_reader_oversized_discard;
    tc "wire: corrupt stream is sticky" wire_reader_corrupt_is_sticky;
    tc "request: decode and reject" parse_request_cases;
    tc "handle: status classification" handle_classification;
    tc "handle: budgets and ceilings" handle_budgets;
    tc "handle: injected faults poison one request" handle_injected_isolation;
    tc "serve_fd: end to end, ordered" serve_fd_end_to_end;
    tc "serve_fd: oversized + corrupt tail" serve_fd_oversized_and_corrupt;
    tc "serve_fd: sheds beyond --max-queue" serve_fd_sheds_over_max_queue;
    tc "serve_fd: drains on shutdown request" serve_fd_drains_on_shutdown_request;
    tc "serve_unix: socket round-trip and shutdown" serve_unix_roundtrip;
    tc "soak: mixed request storm, all answered" soak;
  ]
