Parallel verification must be byte-identical to sequential: same stdout,
same stderr (diagnostic order included), same exit code, same --diag-json.

A 5-chunk input mixing valid chunks, a verify error, and a parse error:

  $ cat > input.mlir <<'EOF'
  > %c = "cmath.constant"() {value = 2.0 : f32} : () -> !cmath.complex<f32>
  > %m = "cmath.mul"(%c, %c) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>
  > 
  > // -----
  > 
  > %bad = "cmath.norm"() : () -> f32
  > 
  > // -----
  > 
  > %p = "cmath.mul"(%x, : (i32) -> i32
  > 
  > // -----
  > 
  > %n = "cmath.norm"(%c2) : (!cmath.complex<f64>) -> f64
  > %c2 = "cmath.constant"() {value = 1.0 : f64} : () -> !cmath.complex<f64>
  > 
  > // -----
  > 
  > %ok = "cmath.constant"() {value = 0.5 : f32} : () -> !cmath.complex<f32>
  > EOF

  $ irdl-opt --cmath --split-input-file --diag-json d1.json input.mlir \
  >   >out1.txt 2>err1.txt; echo "exit: $?"
  exit: 1
  $ irdl-opt --cmath --split-input-file --jobs 4 --diag-json d4.json input.mlir \
  >   >out4.txt 2>err4.txt; echo "exit: $?"
  exit: 1

  $ cmp out1.txt out4.txt && echo "stdout identical"
  stdout identical
  $ cmp err1.txt err4.txt && echo "stderr identical"
  stderr identical
  $ cmp d1.json d4.json && echo "diag-json identical"
  diag-json identical

The shared reference output (diagnostics in chunk order, then the
surviving chunks re-printed):

  $ cat err1.txt
  input.mlir:6:1-5: error: 'cmath.norm' expects 1 operands, got 0
    6 | %bad = "cmath.norm"() : () -> f32
      | ^~~~
  input.mlir:10:22-23: error: at ':': expected SSA value name
    10 | %p = "cmath.mul"(%x, : (i32) -> i32
       |                      ^
  input.mlir:10:18-20: error: use of undefined value %x
    10 | %p = "cmath.mul"(%x, : (i32) -> i32
       |                  ^~
  $ cat out1.txt
  %0 = "cmath.constant"() {value = 2.0 : f32} : () -> (!cmath.complex<f32>)
  %1 = cmath.mul %0, %0 : f32
  // -----
  %0 = cmath.norm %1 : f64
  %1 = "cmath.constant"() {value = 1.0 : f64} : () -> (!cmath.complex<f64>)
  // -----
  %0 = "cmath.constant"() {value = 0.5 : f32} : () -> (!cmath.complex<f32>)

--jobs 0 picks the machine's domain count; still identical:

  $ irdl-opt --cmath --split-input-file --jobs 0 input.mlir \
  >   >out0.txt 2>err0.txt; echo "exit: $?"
  exit: 1
  $ cmp out1.txt out0.txt && cmp err1.txt err0.txt && echo "identical"
  identical

--batch processes many files over one resident registry, with a header per
file; parallel and sequential agree byte-for-byte there too:

  $ mkdir corpus
  $ cat > corpus/a.mlir <<'EOF'
  > %c = "cmath.constant"() {value = 3.0 : f32} : () -> !cmath.complex<f32>
  > EOF
  $ cat > corpus/b.mlir <<'EOF'
  > %x = "cmath.norm"() : () -> f32
  > EOF
  $ cat > corpus/c.mlir <<'EOF'
  > %c = "cmath.constant"() {value = 1.0 : f64} : () -> !cmath.complex<f64>
  > %n = "cmath.norm"(%c) : (!cmath.complex<f64>) -> f64
  > EOF
  $ irdl-opt --cmath --batch corpus >bout1.txt 2>berr1.txt; echo "exit: $?"
  exit: 2
  $ irdl-opt --cmath --batch corpus --jobs 4 >bout4.txt 2>berr4.txt; echo "exit: $?"
  exit: 2
  $ cmp bout1.txt bout4.txt && cmp berr1.txt berr4.txt && echo "batch identical"
  batch identical
  $ cat bout1.txt
  // ===== corpus/a.mlir =====
  %0 = "cmath.constant"() {value = 3.0 : f32} : () -> (!cmath.complex<f32>)
  // ===== corpus/c.mlir =====
  %0 = "cmath.constant"() {value = 1.0 : f64} : () -> (!cmath.complex<f64>)
  %1 = cmath.norm %0 : f64
  $ cat berr1.txt
  corpus/b.mlir:1:1-3: error: 'cmath.norm' expects 1 operands, got 0
    1 | %x = "cmath.norm"() : () -> f32
      | ^~

A batch list file may name its inputs explicitly ('#' comments allowed):

  $ cat > list.txt <<'EOF'
  > # the good ones only
  > corpus/a.mlir
  > corpus/c.mlir
  > EOF
  $ irdl-opt --cmath --batch list.txt --jobs 2; echo "exit: $?"
  // ===== corpus/a.mlir =====
  %0 = "cmath.constant"() {value = 3.0 : f32} : () -> (!cmath.complex<f32>)
  // ===== corpus/c.mlir =====
  %0 = "cmath.constant"() {value = 1.0 : f64} : () -> (!cmath.complex<f64>)
  %1 = cmath.norm %0 : f64
  exit: 0

--batch and a positional input are mutually exclusive:

  $ irdl-opt --cmath --batch corpus input.mlir
  irdl-opt: --batch cannot be combined with a positional INPUT
  [1]

--verify-diagnostics composes with --jobs (the matcher sees the replayed
diagnostics in the same order):

  $ cat > annotated.mlir <<'EOF'
  > // expected-error@below {{expects 1 operands}}
  > %bad = "cmath.norm"() : () -> f32
  > 
  > // -----
  > 
  > %ok = "cmath.constant"() {value = 2.0 : f32} : () -> !cmath.complex<f32>
  > EOF
  $ irdl-opt --cmath --split-input-file --verify-diagnostics annotated.mlir; echo "exit: $?"
  exit: 0
  $ irdl-opt --cmath --split-input-file --verify-diagnostics --jobs 4 annotated.mlir; echo "exit: $?"
  exit: 0
