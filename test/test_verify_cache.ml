(** Tests for the memoized verification cache: cached results must be
    indistinguishable from recomputation (identical diagnostics on repeat
    runs), registration must invalidate, and the hit/miss counters must
    behave monotonically. *)

open Irdl_ir
open Util

let stats ctx = (Context.stats ctx).st_verify

(* An op whose result type is malformed at the *type* level (wrong parameter
   arity), so the failure itself is what gets memoized. *)
let bad_complex_op () =
  Graph.Op.create
    ~result_tys:[ Attr.dynamic ~dialect:"cmath" ~name:"complex" [] ]
    "t.v"

let repeat_verify_same_diagnostics () =
  let ctx = cmath_ctx () in
  let op = bad_complex_op () in
  let run () =
    List.map Irdl_support.Diag.to_string (Verifier.verify_all ctx op)
  in
  let first = run () in
  let s1 = stats ctx in
  let second = run () in
  let s2 = stats ctx in
  Alcotest.(check (list string)) "identical diagnostics" first second;
  Alcotest.(check bool) "first run failed" true (first <> []);
  Alcotest.(check bool) "second run hit the cache" true (s2.vs_hits > s1.vs_hits);
  Alcotest.(check int) "no new misses on repeat" s1.vs_misses s2.vs_misses

let registration_invalidates_cached_failure () =
  (* In a strict context an unregistered type fails verification; that
     failure is cached. Registering the defining dialect must flush the
     cache so the same (interned, same-id) type now verifies. *)
  let ctx = Context.create ~allow_unregistered:false () in
  let _ =
    check_ok "load t"
      (Irdl_core.Irdl.load_one ctx {|Dialect t { Operation v { Results (r: !AnyType) } }|})
  in
  let op =
    Graph.Op.create
      ~result_tys:[ Attr.dynamic ~dialect:"d2" ~name:"box" [] ]
      "t.v"
  in
  verify_err ~containing:"unregistered type" ctx op;
  verify_err ~containing:"unregistered type" ctx op;
  let before = stats ctx in
  Alcotest.(check bool) "failure was cached" true (before.vs_hits > 0);
  let _ =
    check_ok "load d2"
      (Irdl_core.Irdl.load_one ctx {|Dialect d2 { Type box {} }|})
  in
  let after = stats ctx in
  Alcotest.(check bool) "registration invalidated" true
    (after.vs_invalidations > before.vs_invalidations);
  verify_ok ctx op

let corpus_hits_grow_monotonically () =
  let ctx = Irdl_ir.Context.create () in
  let _ = check_ok "load corpus" (Irdl_dialects.Corpus.load_all ctx) in
  let blk = Graph.Block.create () in
  for i = 0 to 19 do
    Graph.Block.append blk
      (Graph.Op.create
         ~result_tys:
           [
             Attr.dynamic ~dialect:"async" ~name:"token" [];
             Attr.dynamic ~dialect:"shape" ~name:"witness"
               [ Attr.int (Int64.of_int (i mod 4)) ];
           ]
         "t.v")
  done;
  let m =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ]
      "t.func"
  in
  let hits = ref (stats ctx).vs_hits in
  let misses_after_warmup = ref 0 in
  for i = 1 to 4 do
    ignore (Verifier.verify_all ctx m);
    let s = stats ctx in
    Alcotest.(check bool)
      (Fmt.str "hits grew on pass %d" i)
      true (s.vs_hits > !hits);
    hits := s.vs_hits;
    if i = 1 then misses_after_warmup := s.vs_misses
    else
      Alcotest.(check int)
        (Fmt.str "no new misses on pass %d" i)
        !misses_after_warmup s.vs_misses
  done;
  let s = stats ctx in
  Alcotest.(check bool) "hit rate dominates" true
    (Context.verify_hit_rate s > 0.5)

let cache_toggle () =
  let ctx = cmath_ctx () in
  let op = bad_complex_op () in
  ignore (Verifier.verify_all ctx op);
  Alcotest.(check bool) "enabled by default" true
    (Context.verify_cache_enabled ctx);
  Context.set_verify_cache ctx false;
  let s = stats ctx in
  Alcotest.(check int) "disable flushes ty entries" 0 s.vs_ty_entries;
  Alcotest.(check int) "disable flushes attr entries" 0 s.vs_attr_entries;
  (* Uncached verification must reach the same verdict and record nothing. *)
  let diags = Verifier.verify_all ctx op in
  Alcotest.(check bool) "still fails uncached" true (diags <> []);
  let s' = stats ctx in
  Alcotest.(check int) "no entries while disabled" 0 s'.vs_ty_entries;
  Alcotest.(check int) "no hits while disabled" s.vs_hits s'.vs_hits;
  Context.set_verify_cache ctx true;
  ignore (Verifier.verify_all ctx op);
  Alcotest.(check bool) "re-enabled cache repopulates" true
    ((stats ctx).vs_ty_entries > 0)

(* In a single-domain program the shard list has exactly one entry, and the
   merged view is that shard plus the context-global invalidation count —
   i.e. sharding is invisible until a second domain shows up. *)
let single_domain_shard_is_the_merged_view () =
  let ctx = cmath_ctx () in
  ignore (Verifier.verify_all ctx (bad_complex_op ()));
  match (Context.stats ~scope:`Per_domain ctx).st_verify_shards with
  | [ s ] ->
      let merged = stats ctx in
      Alcotest.(check int) "ty entries" merged.vs_ty_entries s.vs_ty_entries;
      Alcotest.(check int) "attr entries" merged.vs_attr_entries
        s.vs_attr_entries;
      Alcotest.(check int) "hits" merged.vs_hits s.vs_hits;
      Alcotest.(check int) "misses" merged.vs_misses s.vs_misses;
      Alcotest.(check int) "shard invalidations are unset" 0 s.vs_invalidations
  | shards ->
      Alcotest.failf "expected exactly one shard, got %d" (List.length shards)

(* After freeze, no registration can flush: shards only ever gain entries. *)
let post_freeze_append_only () =
  let ctx = cmath_ctx () in
  Context.freeze ctx;
  ignore (Verifier.verify_all ctx (bad_complex_op ()));
  let s1 = stats ctx in
  Alcotest.(check bool) "warmed up" true (s1.vs_ty_entries > 0);
  (* A different type only adds entries; a repeat only adds hits. *)
  ignore
    (Verifier.verify_all ctx
       (Graph.Op.create ~result_tys:[ complex_f64 ] "t.v"));
  ignore (Verifier.verify_all ctx (bad_complex_op ()));
  let s2 = stats ctx in
  Alcotest.(check bool) "entries grew" true
    (s2.vs_ty_entries >= s1.vs_ty_entries);
  Alcotest.(check bool) "hits grew" true (s2.vs_hits > s1.vs_hits);
  Alcotest.(check int) "no invalidation happened" s1.vs_invalidations
    s2.vs_invalidations;
  (match Context.register_type ctx
           {
             Context.td_dialect = "late";
             td_name = "t";
             td_summary = "";
             td_num_params = 0;
             td_verify = (fun _ -> Ok ());
           }
  with
  | () -> Alcotest.fail "post-freeze registration must be rejected"
  | exception Irdl_support.Diag.Error_exn _ -> ());
  let s3 = stats ctx in
  Alcotest.(check int) "rejected registration flushed nothing"
    s2.vs_ty_entries s3.vs_ty_entries;
  Alcotest.(check int) "rejected registration did not invalidate"
    s2.vs_invalidations s3.vs_invalidations

(* Registration (pre-freeze) must flush every domain's shard, not just the
   registering domain's. *)
let invalidation_reaches_all_shards () =
  let ctx = cmath_ctx () in
  let populate () = ignore (Verifier.verify_all ctx (bad_complex_op ())) in
  populate ();
  Domain.join (Domain.spawn populate);
  let shards_before = (Context.stats ~scope:`Per_domain ctx).st_verify_shards in
  Alcotest.(check int) "two shards populated" 2 (List.length shards_before);
  List.iter
    (fun (s : Context.verify_stats) ->
      Alcotest.(check bool) "each shard has entries" true
        (s.vs_ty_entries > 0))
    shards_before;
  let before = stats ctx in
  let _ =
    check_ok "load d2"
      (Irdl_core.Irdl.load_one ctx {|Dialect d2 { Type box {} }|})
  in
  List.iter
    (fun (s : Context.verify_stats) ->
      Alcotest.(check int) "shard flushed: ty" 0 s.vs_ty_entries;
      Alcotest.(check int) "shard flushed: attr" 0 s.vs_attr_entries)
    ((Context.stats ~scope:`Per_domain ctx).st_verify_shards);
  Alcotest.(check bool) "invalidation counted once" true
    ((stats ctx).vs_invalidations > before.vs_invalidations)

let suite =
  [
    tc "repeat verification: identical diagnostics" repeat_verify_same_diagnostics;
    tc "single-domain shard equals merged view"
      single_domain_shard_is_the_merged_view;
    tc "post-freeze shards are append-only" post_freeze_append_only;
    tc "registration invalidates every shard" invalidation_reaches_all_shards;
    tc "registration invalidates a cached failure"
      registration_invalidates_cached_failure;
    tc "hit counters grow across corpus verify_all"
      corpus_hits_grow_monotonically;
    tc "cache can be toggled off and on" cache_toggle;
  ]
