(** Figure 13's feature matrix, as executable checks: every feature the
    paper claims for IRDL (✓ columns of the IRDL row) is exercised against
    the implementation, one test per column. *)

open Irdl_ir
module C = Irdl_core.Constraint_expr
open Util

let load src = load_dialect src

(* Singleton types: a type with no parameters. *)
let singleton_types () =
  let ctx, _ = load {|Dialect d { Type unit_t {} Operation o { Operands (x: !unit_t) } }|} in
  let t = Attr.dynamic ~dialect:"d" ~name:"unit_t" [] in
  let v = Graph.Op.result (Graph.Op.create ~result_tys:[ t ] "t.v") 0 in
  verify_ok ctx (Graph.Op.create ~operands:[ v ] "d.o")

(* Parametric types. *)
let parametric_types () =
  let ctx, _ =
    load {|Dialect d { Type box { Parameters (t: !AnyType) } }|}
  in
  verify_ok ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"d" ~name:"box" [ Attr.typ Attr.f32 ] ]
       "t.v");
  verify_err ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"d" ~name:"box" [ Attr.int 1L ] ]
       "t.v")

(* Values in parameters: integer/string literals as parameter constraints. *)
let values_in_params () =
  let ctx, _ =
    load
      {|Dialect d { Type fixed { Parameters (n: 3 : int32_t, s: "tag") } }|}
  in
  let si32 v = Attr.Int { value = v; ty = Attr.integer ~signedness:Attr.Signed 32 } in
  verify_ok ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"d" ~name:"fixed"
                       [ si32 3L; Attr.string "tag" ] ]
       "t.v");
  verify_err ctx
    (Graph.Op.create
       ~result_tys:[ Attr.dynamic ~dialect:"d" ~name:"fixed"
                       [ si32 4L; Attr.string "tag" ] ]
       "t.v")

(* Attributes on operations. *)
let attributes_feature () =
  let ctx = cmath_ctx () in
  verify_ok ctx
    (Graph.Op.create ~result_tys:[ complex_f32 ]
       ~attrs:
         [ ("re", Attr.float ~ty:Attr.f32 1.0);
           ("im", Attr.float ~ty:Attr.f32 2.0) ]
       "cmath.create_constant");
  verify_err ctx
    (Graph.Op.create ~result_tys:[ complex_f32 ]
       ~attrs:[ ("re", Attr.float ~ty:Attr.f32 1.0) ]
       "cmath.create_constant")

(* Variadic operands/results. *)
let variadic_feature () =
  let ctx, _ =
    load {|Dialect d { Operation pack { Operands (xs: Variadic<!i32>) } }|}
  in
  let v () = Graph.Op.result (Graph.Op.create ~result_tys:[ Attr.i32 ] "t.v") 0 in
  verify_ok ctx (Graph.Op.create "d.pack");
  verify_ok ctx (Graph.Op.create ~operands:[ v (); v (); v () ] "d.pack")

(* Equality constraints via constraint variables. *)
let equality_feature () =
  let ctx = cmath_ctx () in
  let v ty = Graph.Op.result (Graph.Op.create ~result_tys:[ ty ] "t.v") 0 in
  verify_ok ctx
    (Graph.Op.create
       ~operands:[ v complex_f64; v complex_f64 ]
       ~result_tys:[ complex_f64 ] "cmath.mul");
  verify_err ctx
    (Graph.Op.create
       ~operands:[ v complex_f64; v complex_f32 ]
       ~result_tys:[ complex_f64 ] "cmath.mul")

(* Nested parameter constraints: !complex<!FloatType> inside a var. *)
let nested_params_feature () =
  let ctx = cmath_ctx () in
  let bad = Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.i32 ] in
  verify_err ctx (Graph.Op.create ~result_tys:[ bad ] "t.v")

(* AnyOf / And / Not as builtin constraints. *)
let combinator_features () =
  let ctx, _ =
    load
      {|Dialect d {
          Operation any { Operands (x: AnyOf<!f32, !i32>) }
          Operation both { Operands (x: And<!AnyType, Not<!f32>>) }
        }|}
  in
  let v ty = Graph.Op.result (Graph.Op.create ~result_tys:[ ty ] "t.v") 0 in
  verify_ok ctx (Graph.Op.create ~operands:[ v Attr.f32 ] "d.any");
  verify_err ctx (Graph.Op.create ~operands:[ v Attr.f64 ] "d.any");
  verify_ok ctx (Graph.Op.create ~operands:[ v Attr.i32 ] "d.both");
  verify_err ctx (Graph.Op.create ~operands:[ v Attr.f32 ] "d.both")

(* SSA + regions representation. *)
let ssa_regions_feature () =
  let ctx = cmath_ctx () in
  let op =
    parse_op ctx
      {|
"t.wrap"() ({
^bb0(%lb: i32):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|}
  in
  verify_ok ctx op

(* Introspectability: a loaded dialect can be queried structurally. *)
let introspection_feature () =
  let _, dl = (Util.cmath_ctx (), ()) in
  ignore dl;
  let ctx = Irdl_ir.Context.create () in
  let dl = check_ok "load" (Irdl_dialects.Cmath.load ctx) in
  let op =
    List.find
      (fun (o : Irdl_core.Resolve.op) -> o.op_name = "mul")
      dl.Irdl_core.Resolve.dl_ops
  in
  Alcotest.(check int) "mul operand slots" 2 (List.length op.op_operands);
  (match (List.hd op.op_operands).s_constraint with
  | C.Var { C.v_name = "T"; _ } -> ()
  | c -> Alcotest.failf "expected var, got %s" (C.to_string c));
  (* and via the registered context *)
  match Irdl_ir.Context.lookup_type ctx ~dialect:"cmath" ~name:"complex" with
  | Some td -> Alcotest.(check int) "complex params" 1 td.td_num_params
  | None -> Alcotest.fail "complex not registered"

(* No Turing-completeness in IRDL itself: C++ snippets without hooks do not
   execute anything — they are data (counted, optionally rejected). *)
let no_turing_feature () =
  let n = Irdl_core.Native.create () in
  let ctx = Irdl_ir.Context.create () in
  let _ =
    check_ok "load"
      (Irdl_core.Irdl.load_one ~native:n ctx
         {|Dialect d {
             Operation o { Operands (x: !i32) CppConstraint "while(1){}" }
           }|})
  in
  let v = Graph.Op.result (Graph.Op.create ~result_tys:[ Attr.i32 ] "t.v") 0 in
  (* verifying terminates and records the snippet as unresolved *)
  verify_ok ctx (Graph.Op.create ~operands:[ v ] "d.o");
  Alcotest.(check (list string)) "counted" [ "while(1){}" ]
    (Irdl_core.Native.unresolved n)

(* IRDL-C++ provides the Turing-complete escape hatch (host closures). *)
let irdl_cpp_feature () =
  let n = Irdl_core.Native.create () in
  Irdl_core.Native.register_op_hook n "operandIsEven($_self)" (fun op ->
      match Graph.Op.operands op with
      | [ v ] -> (
          match Graph.Value.defining_op v with
          | Some def -> (
              match Graph.Op.attr def "value" with
              | Some (Attr.Int { value; _ }) -> Int64.rem value 2L = 0L
              | _ -> false)
          | None -> false)
      | _ -> false);
  let ctx = Irdl_ir.Context.create () in
  let _ =
    check_ok "load"
      (Irdl_core.Irdl.load_one ~native:n ctx
         {|Dialect d {
             Operation even { Operands (x: !i64) CppConstraint "operandIsEven($_self)" }
           }|})
  in
  let const v =
    Graph.Op.result
      (Graph.Op.create ~result_tys:[ Attr.i64 ]
         ~attrs:[ ("value", Attr.int v) ]
         "t.const")
      0
  in
  verify_ok ctx (Graph.Op.create ~operands:[ const 4L ] "d.even");
  verify_err ctx (Graph.Op.create ~operands:[ const 3L ] "d.even")

let suite =
  [
    tc "singleton types" singleton_types;
    tc "parametric types" parametric_types;
    tc "values in parameters" values_in_params;
    tc "attributes" attributes_feature;
    tc "variadic" variadic_feature;
    tc "equality (constraint variables)" equality_feature;
    tc "nested parameter constraints" nested_params_feature;
    tc "AnyOf / And / Not builtins" combinator_features;
    tc "SSA + regions representation" ssa_regions_feature;
    tc "introspectable definitions" introspection_feature;
    tc "IRDL itself is not Turing-complete" no_turing_feature;
    tc "IRDL-C++ escape hatch is" irdl_cpp_feature;
  ]
