(** The streaming frontend ({!Irdl_ir.Parser.Stream}) differentially
    against the materializing parser: same ops, byte-identical printed IR,
    identical diagnostics (order included), same fail-fast/fail-soft
    behavior — across hand-written inputs, error-recovery inputs and
    generated 10^3..10^4-op modules. Plus the release semantics the
    streaming driver relies on. *)

open Irdl_support
module Attr = Irdl_ir.Attr
module Graph = Irdl_ir.Graph
module Context = Irdl_ir.Context
module Parser = Irdl_ir.Parser
module Printer = Irdl_ir.Printer
module Verifier = Irdl_ir.Verifier

let messages e =
  List.map (fun (d : Diag.t) -> Diag.to_string d) (Diag.Engine.diagnostics e)

(* Drain a fail-soft session, mimicking irdl-opt's streaming driver: print
   each op into one printer session, collect per-op verification results,
   release, and merge the verification diagnostics at end-of-stream. *)
let drain_collect ?engine ctx src =
  let session = Parser.Stream.create ?engine ctx src in
  let printer = Printer.create ctx in
  let buf = Buffer.create 256 in
  let count = ref 0 in
  let vdiags = ref [] in
  let rec go () =
    match Parser.Stream.next session with
    | Ok None -> Ok ()
    | Error d -> Error d
    | Ok (Some op) ->
        incr count;
        vdiags := Verifier.verify_all ctx op :: !vdiags;
        if Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (Fmt.str "%a" (Printer.pp_op printer) op);
        Parser.Stream.release op;
        go ()
  in
  let result = go () in
  ( result,
    !count,
    Buffer.contents buf,
    Verifier.merge_diags (List.concat (List.rev !vdiags)) )

(* The materializing reference for the same source. *)
let materialize ?engine ctx src =
  match Parser.parse_ops ?engine ctx src with
  | Ok ops ->
      ( Ok (),
        List.length ops,
        Printer.ops_to_string ctx ops,
        Verifier.verify_ops_all ctx ops )
  | Error d -> (Error d, 0, "", [])

(* Both paths over [src], asserting byte-identical output. Fail-soft runs
   get fresh engines whose recorded diagnostics must also agree. *)
let check_differential name src =
  let ctx = Context.create () in
  let em = Diag.Engine.create () in
  let m_res, m_count, m_text, m_vdiags = materialize ~engine:em ctx src in
  let es = Diag.Engine.create () in
  let s_res, s_count, s_text, s_vdiags = drain_collect ~engine:es ctx src in
  Alcotest.(check bool) (name ^ ": both Ok") true (m_res = Ok () && s_res = Ok ());
  Alcotest.(check int) (name ^ ": op count") m_count s_count;
  Alcotest.(check string) (name ^ ": printed IR") m_text s_text;
  Alcotest.(check (list string))
    (name ^ ": parse diagnostics")
    (messages em) (messages es);
  Alcotest.(check (list string))
    (name ^ ": verify diagnostics")
    (List.map Diag.to_string m_vdiags)
    (List.map Diag.to_string s_vdiags)

(* ---------------- hand-written inputs ---------------- *)

let well_formed () =
  check_differential "well-formed"
    "%0 = \"t.const\"() : () -> i32\n\
     %1 = \"t.add\"(%0, %0) : (i32, i32) -> i32\n\
     \"t.use\"(%1) : (i32) -> ()\n"

let regions () =
  check_differential "regions"
    "\"t.func\"() ({\n\
     ^bb0(%a: i32):\n\
    \  %0 = \"t.add\"(%a, %a) : (i32, i32) -> i32\n\
    \  \"t.ret\"(%0) : (i32) -> ()\n\
     }) : () -> ()\n\
     %x = \"t.const\"() : () -> f32\n"

let forward_refs () =
  (* %m2 is used before its definition at top level: the session must hold
     the user back until the definition patches the placeholder. *)
  check_differential "top-level forward refs"
    "%0 = \"t.use\"(%m2) : (f32) -> f32\n\
     %m2 = \"t.def\"() : () -> f32\n\
     %1 = \"t.use2\"(%0, %m2) : (f32, f32) -> f32\n"

let error_recovery () =
  check_differential "error recovery"
    "%0 = \"t.const\"() : () -> i32\n\
     %1 = \"t.add\"(%0, %0 : (i32, i32) -> i32\n\
     \"bogus\n\
     %2 = \"t.use\"(%0) : (i32) -> ()\n\
     }\n\
     %3 = \"t.use\"(%undefined_value) : (i32) -> ()\n"

let fail_fast_error () =
  let src = "%0 = \"t.const\"() : () -> i32\n%1 = bogus\n" in
  let ctx = Context.create () in
  let expected =
    match Parser.parse_ops ctx src with
    | Error d -> Diag.to_string d
    | Ok _ -> Alcotest.fail "materializing parse unexpectedly succeeded"
  in
  let session = Parser.Stream.create ctx src in
  (* The first op parses and is yielded before the error is reached. *)
  (match Parser.Stream.next session with
  | Ok (Some op) ->
      Alcotest.(check string) "first op" "t.const" op.Graph.op_name
  | _ -> Alcotest.fail "expected the first op");
  (match Parser.Stream.next session with
  | Error d -> Alcotest.(check string) "same error" expected (Diag.to_string d)
  | Ok _ -> Alcotest.fail "expected the parse error");
  (* The session stays dead, returning the same error again. *)
  match Parser.Stream.next session with
  | Error d ->
      Alcotest.(check string) "error is sticky" expected (Diag.to_string d)
  | Ok _ -> Alcotest.fail "expected the sticky error"

(* ---------------- release semantics ---------------- *)

let release_semantics () =
  let ctx = Context.create () in
  let src =
    "%0 = \"t.def\"() : () -> i32\n%1 = \"t.use\"(%0) : (i32) -> i32\n"
  in
  let session = Parser.Stream.create ctx src in
  let first =
    match Parser.Stream.next session with
    | Ok (Some op) -> op
    | _ -> Alcotest.fail "expected first op"
  in
  let result = Graph.Op.result first 0 in
  Parser.Stream.release first;
  (match result.Graph.v_def with
  | Graph.Released -> ()
  | _ -> Alcotest.fail "released result should have v_def = Released");
  Alcotest.(check bool)
    "defining_op gone" true
    (Graph.Value.defining_op result = None);
  (* The second op still names the released value with its type intact,
     and still verifies. *)
  match Parser.Stream.next session with
  | Ok (Some op) ->
      let operand = Graph.Op.operand op 0 in
      Alcotest.(check bool) "same value record" true (operand == result);
      Alcotest.(check bool)
        "type survives release" true
        (Attr.equal_ty (Graph.Value.ty operand) Attr.i32);
      Alcotest.(check int)
        "later op verifies against released operand" 0
        (List.length (Verifier.verify_all ctx op))
  | _ -> Alcotest.fail "expected second op"

(* ---------------- generated modules ---------------- *)

(* A flat module with an error injected every [err_every] ops (0 = none):
   the generated analog of the cram error-recovery corpus. *)
let generated ?(err_every = 0) n =
  let buf = Buffer.create (n * 40) in
  Buffer.add_string buf "%v0 = \"t.const\"() : () -> i32\n";
  for i = 1 to n - 1 do
    if err_every > 0 && i mod err_every = 0 then
      Buffer.add_string buf "%e = \"t.broken\"(%v0 : (i32) -> i32\n"
    else
      Buffer.add_string buf
        (Printf.sprintf "%%v%d = \"t.%s\"(%%v%d) : (i32) -> i32\n" i
           (if i land 1 = 0 then "add" else "mul")
           (i - 1))
  done;
  Buffer.contents buf

let generated_clean () =
  List.iter
    (fun n -> check_differential (Printf.sprintf "generated %d" n) (generated n))
    [ 1_000; 10_000 ]

let generated_errors () =
  List.iter
    (fun n ->
      check_differential
        (Printf.sprintf "generated %d with errors" n)
        (generated ~err_every:97 n))
    [ 1_000; 5_000 ]

(* Streaming keeps only the value records alive: after draining a
   generated module with ops released as they come, re-verifying the next
   module still works (no poisoned state in the context). *)
let sessions_are_independent () =
  let ctx = Context.create () in
  let src = generated 1_000 in
  let _, c1, t1, _ = drain_collect ctx src in
  let _, c2, t2, _ = drain_collect ctx src in
  Alcotest.(check int) "same count across sessions" c1 c2;
  Alcotest.(check string) "same text across sessions" t1 t2

(* ---------------- unified stats / sources ---------------- *)

let stats_scopes () =
  let ctx = Context.create () in
  (* Composite (dynamic) types are what the verify cache memoizes; builtin
     leaves verify vacuously and leave no shard behind. *)
  let src =
    "%0 = \"t.make\"() : () -> !t.box\n\
     %1 = \"t.use\"(%0) : (!t.box) -> !t.box\n"
  in
  let ops = Result.get_ok (Parser.parse_ops ctx src) in
  let _ = Verifier.verify_ops_all ctx ops in
  let merged = Context.stats ctx in
  Alcotest.(check (list reject))
    "merged scope has no shard breakdown" []
    (List.map (fun _ -> ()) merged.st_verify_shards);
  let per = Context.stats ~scope:`Per_domain ctx in
  Alcotest.(check bool)
    "per-domain scope exposes shards" true
    (per.st_verify_shards <> []);
  let shard_sum =
    List.fold_left
      (fun acc (s : Context.verify_stats) -> acc + s.vs_hits + s.vs_misses)
      0 per.st_verify_shards
  in
  Alcotest.(check int)
    "shards sum to the merged counters"
    (merged.st_verify.vs_hits + merged.st_verify.vs_misses)
    shard_sum

let sources_drop () =
  Diag.Sources.register ~file:"drop-me.mlir" "contents";
  Alcotest.(check bool)
    "registered" true
    (Diag.Sources.lookup "drop-me.mlir" = Some "contents");
  Diag.Sources.drop "drop-me.mlir";
  Alcotest.(check bool)
    "dropped" true
    (Diag.Sources.lookup "drop-me.mlir" = None);
  (* Dropping an absent file is a no-op. *)
  Diag.Sources.drop "drop-me.mlir"

let suite =
  [
    Alcotest.test_case "differential: well-formed" `Quick well_formed;
    Alcotest.test_case "differential: regions" `Quick regions;
    Alcotest.test_case "differential: forward refs" `Quick forward_refs;
    Alcotest.test_case "differential: error recovery" `Quick error_recovery;
    Alcotest.test_case "fail-fast: same first error, sticky" `Quick
      fail_fast_error;
    Alcotest.test_case "release: later uses survive" `Quick release_semantics;
    Alcotest.test_case "differential: generated 10^3..10^4" `Slow
      generated_clean;
    Alcotest.test_case "differential: generated with errors" `Slow
      generated_errors;
    Alcotest.test_case "sessions are independent" `Quick
      sessions_are_independent;
    Alcotest.test_case "Context.stats scopes" `Quick stats_scopes;
    Alcotest.test_case "Diag.Sources.drop" `Quick sources_drop;
  ]
