(* The concurrency harness: Domain_pool scheduling semantics, and N domains
   hammering one frozen context — interned attribute/type construction,
   cached verification — against single-domain results. *)

open Util
module Domain_pool = Irdl_support.Domain_pool
module Diag = Irdl_support.Diag
module Context = Irdl_ir.Context
module Attr = Irdl_ir.Attr
module Parser = Irdl_ir.Parser
module Verifier = Irdl_ir.Verifier

(* ---------------------------------------------------------------- *)
(* Domain_pool unit suite                                            *)
(* ---------------------------------------------------------------- *)

let test_pool_empty () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "no results" 0 (Array.length (Domain_pool.run pool [||]));
      Alcotest.(check int) "nothing executed" 0 (Domain_pool.executed pool))

let test_pool_positional () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let tasks = Array.init 100 (fun i () -> i * i) in
      let results = Domain_pool.run pool tasks in
      Alcotest.(check (array int))
        "slot i holds task i's result"
        (Array.init 100 (fun i -> i * i))
        results;
      Alcotest.(check int) "all executed" 100 (Domain_pool.executed pool))

(* Skewed durations: the heavy tasks all land on one queue, so finishing
   the batch at all exercises the stealing path; correctness of the
   results is the assertion (steal counters are timing-dependent). *)
let test_pool_unbalanced () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let spin n =
        let acc = ref 0 in
        for i = 1 to n do
          acc := (!acc * 7) + i
        done;
        !acc
      in
      let tasks =
        Array.init 64 (fun i () ->
            if i mod 4 = 0 then spin 2_000_000 else spin 10)
      in
      let expected =
        Array.init 64 (fun i -> if i mod 4 = 0 then 2_000_000 else 10)
        |> Array.map (fun n ->
               let acc = ref 0 in
               for i = 1 to n do
                 acc := (!acc * 7) + i
               done;
               !acc)
      in
      let results = Domain_pool.run pool tasks in
      Alcotest.(check (array int)) "skewed batch correct" expected results;
      Alcotest.(check bool)
        "steal counter non-negative" true
        (Domain_pool.steals pool >= 0))

let test_pool_reuse () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      for round = 1 to 5 do
        let tasks = Array.init 20 (fun i () -> (round * 100) + i) in
        let results = Domain_pool.run pool tasks in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 20 (fun i -> (round * 100) + i))
          results
      done;
      Alcotest.(check int) "5 rounds of 20" 100 (Domain_pool.executed pool))

exception Boom of int

let test_pool_exception () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let tasks =
        Array.init 30 (fun i () -> if i mod 10 = 3 then raise (Boom i) else i)
      in
      (match Domain_pool.run pool tasks with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Boom i ->
          Alcotest.(check int) "lowest-indexed failure wins" 3 i);
      (* The failure did not kill the pool. *)
      let results = Domain_pool.run pool (Array.init 8 (fun i () -> -i)) in
      Alcotest.(check (array int))
        "pool survives a failed batch"
        (Array.init 8 (fun i -> -i))
        results)

(* The caller is a pool participant: with one domain every task — the
   failing one included — runs on the caller's own stack, and the failure
   contract (raise after the batch drains, pool survives) must hold there
   too, not only for stolen tasks. *)
let test_pool_caller_exception () =
  Domain_pool.with_pool ~domains:1 (fun pool ->
      let ran = ref 0 in
      let tasks =
        Array.init 6 (fun i () ->
            incr ran;
            if i = 2 then raise (Boom i) else i)
      in
      (match Domain_pool.run pool tasks with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Boom i -> Alcotest.(check int) "caller-task failure" 2 i);
      Alcotest.(check int) "every task still ran" 6 !ran;
      let results = Domain_pool.run pool (Array.init 4 (fun i () -> i + 1)) in
      Alcotest.(check (array int))
        "pool survives a caller-side failure"
        [| 1; 2; 3; 4 |] results)

(* However the failures land across domains and rounds, the re-raised one
   is always the lowest-indexed — the property that makes a parallel
   irdl-opt run's exit deterministic. *)
let test_pool_multi_failure_determinism () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      for round = 1 to 10 do
        let tasks =
          Array.init 40 (fun i () ->
              if i mod 7 = 2 then raise (Boom i) else i)
        in
        match Domain_pool.run pool tasks with
        | _ -> Alcotest.fail "expected the batch to raise"
        | exception Boom i ->
            Alcotest.(check int)
              (Printf.sprintf "round %d: lowest failure index" round)
              2 i
      done;
      (* Ten failed batches later the pool still computes. *)
      let results = Domain_pool.run pool (Array.init 16 (fun i () -> i * 3)) in
      Alcotest.(check (array int))
        "pool survives ten failed batches"
        (Array.init 16 (fun i -> i * 3))
        results)

let test_pool_sequential_degenerate () =
  Domain_pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one participant" 1 (Domain_pool.size pool);
      let order = ref [] in
      let tasks =
        Array.init 10 (fun i () ->
            order := i :: !order;
            i)
      in
      let results = Domain_pool.run pool tasks in
      Alcotest.(check (array int))
        "results" (Array.init 10 Fun.id) results;
      Alcotest.(check (list int))
        "a 1-domain pool runs tasks in order on the caller"
        [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !order);
      Alcotest.(check int) "no steals possible" 0 (Domain_pool.steals pool))

let test_pool_shutdown () =
  let pool = Domain_pool.create ~domains:3 () in
  ignore (Domain_pool.run pool (Array.init 4 (fun i () -> i)));
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  match Domain_pool.run pool [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "run after shutdown must raise"
  | exception Domain_pool.Stopped -> ()

let test_pool_reentrant () =
  Domain_pool.with_pool ~domains:2 (fun pool ->
      match
        Domain_pool.run pool
          [| (fun () -> Domain_pool.run pool [| (fun () -> 0) |]) |]
      with
      | _ -> Alcotest.fail "re-entrant run must raise"
      | exception Invalid_argument _ -> ())

let test_pool_bad_size () =
  match Domain_pool.create ~domains:0 () with
  | _ -> Alcotest.fail "0-domain pool must be rejected"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Freeze lifecycle                                                  *)
(* ---------------------------------------------------------------- *)

let dummy_type_def name =
  {
    Context.td_dialect = "x";
    td_name = name;
    td_summary = "";
    td_num_params = 0;
    td_verify = (fun _ -> Ok ());
  }

let test_freeze_rejects () =
  let ctx = cmath_ctx () in
  Alcotest.(check bool) "starts open" false (Context.is_frozen ctx);
  Context.freeze ctx;
  Context.freeze ctx;
  (* idempotent *)
  Alcotest.(check bool) "frozen" true (Context.is_frozen ctx);
  (match Context.register_type ctx (dummy_type_def "t") with
  | () -> Alcotest.fail "post-freeze register_type must raise"
  | exception Diag.Error_exn d ->
      check_err_containing "frozen register" "frozen"
        (Error d : (unit, _) result));
  (* Lookups still work after the rejection. *)
  Alcotest.(check bool)
    "cmath.complex still registered" true
    (Option.is_some (Context.lookup_type ctx ~dialect:"cmath" ~name:"complex"))

let test_freeze_rejects_dialect_load () =
  let ctx = cmath_ctx () in
  Context.freeze ctx;
  let r = Irdl_core.Irdl.load_one ctx "Dialect fresh {}" in
  check_err_containing "load into frozen context" "frozen"
    (match r with Ok _ -> Ok () | Error d -> Error d)

(* A registration racing the freeze must either complete before it or be
   cleanly rejected after it — never corrupt the context. *)
let test_freeze_register_race () =
  for _round = 1 to 50 do
    let ctx = Context.create () in
    let registrar =
      Domain.spawn (fun () ->
          match Context.register_type ctx (dummy_type_def "t") with
          | () -> `Registered
          | exception Diag.Error_exn d -> `Rejected (Diag.to_string d))
    in
    Context.freeze ctx;
    (match Domain.join registrar with
    | `Registered ->
        Alcotest.(check bool)
          "completed registration is visible" true
          (Option.is_some (Context.lookup_type ctx ~dialect:"x" ~name:"t"))
    | `Rejected msg ->
        Alcotest.(check bool)
          "rejection names the frozen context" true
          (let lower = String.lowercase_ascii msg in
           let needle = "frozen" in
           let rec go i =
             i + String.length needle <= String.length lower
             && (String.sub lower i (String.length needle) = needle
                || go (i + 1))
           in
           go 0);
        Alcotest.(check bool)
          "rejected registration left nothing behind" true
          (Option.is_none (Context.lookup_type ctx ~dialect:"x" ~name:"t")));
    (* Either way the context stays usable. *)
    Alcotest.(check bool) "frozen afterwards" true (Context.is_frozen ctx)
  done

(* ---------------------------------------------------------------- *)
(* Hammering a frozen context from N domains                         *)
(* ---------------------------------------------------------------- *)

let valid_module =
  String.concat "\n"
    [
      {|%a = "cmath.constant"() {value = 1.0 : f32} : () -> !cmath.complex<f32>|};
      {|%b = "cmath.mul"(%a, %a) : (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>|};
      {|%n = "cmath.norm"(%b) : (!cmath.complex<f32>) -> f32|};
    ]

let invalid_module = {|%x = "cmath.norm"() : () -> f32|}

(* Parse + verify both modules [iters] times against [ctx]; the result
   fingerprint must be identical on every domain. *)
let hammer ctx iters () =
  let ok = ref 0 and errs = ref 0 in
  for _ = 1 to iters do
    (match Parser.parse_ops ctx valid_module with
    | Error d -> Alcotest.failf "valid module: %s" (Diag.to_string d)
    | Ok ops -> (
        match Verifier.verify_ops_all ctx ops with
        | [] -> incr ok
        | ds -> Alcotest.failf "valid module: %d diags" (List.length ds)));
    match Parser.parse_ops ctx invalid_module with
    | Error d -> Alcotest.failf "invalid module: %s" (Diag.to_string d)
    | Ok ops -> errs := !errs + List.length (Verifier.verify_ops_all ctx ops)
  done;
  (!ok, !errs)

let test_hammer_frozen_context () =
  let ctx = cmath_ctx () in
  Context.freeze ctx;
  let baseline = hammer ctx 50 () in
  let results =
    Domain_pool.with_pool ~domains:4 (fun pool ->
        Domain_pool.run pool (Array.init 8 (fun _ -> hammer ctx 50)))
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "domain task %d agrees with single-domain run" i)
        baseline r)
    results

(* Interned construction across domains: every domain builds the same
   attribute; physical identity is per-domain, structural equality and
   re-interned ids agree everywhere. *)
let test_cross_domain_interning () =
  let local = complex_f32 in
  let remote =
    Domain_pool.with_pool ~domains:4 (fun pool ->
        Domain_pool.run pool
          (Array.init 6 (fun _ () ->
               Attr.dynamic ~dialect:"cmath" ~name:"complex"
                 [ Attr.typ Attr.f32 ])))
  in
  Array.iter
    (fun ty ->
      Alcotest.(check bool)
        "structurally equal across domains" true
        (Attr.equal_ty local ty);
      Alcotest.(check int)
        "re-interning a foreign value converges on the local id"
        (Attr.id_ty local) (Attr.id_ty ty))
    remote

(* ---------------------------------------------------------------- *)
(* Verify-cache shards                                               *)
(* ---------------------------------------------------------------- *)

let test_shard_stats_merge () =
  let ctx = cmath_ctx () in
  Context.freeze ctx;
  ignore (hammer ctx 10 ());
  (* Spawn domains directly (rather than through a pool): work stealing
     could let a fast caller drain the whole batch, and this test needs a
     guarantee that several domains actually verified. *)
  Array.init 2 (fun _ -> Domain.spawn (hammer ctx 10))
  |> Array.iter (fun d -> ignore (Domain.join d));
  let shards = (Context.stats ~scope:`Per_domain ctx).st_verify_shards in
  Alcotest.(check bool)
    "several shards after a parallel run" true
    (List.length shards >= 2);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  let merged = (Context.stats ctx).st_verify in
  Alcotest.(check int)
    "merged hits = sum of shard hits"
    (sum (fun (s : Context.verify_stats) -> s.vs_hits))
    merged.vs_hits;
  Alcotest.(check int)
    "merged misses = sum of shard misses"
    (sum (fun (s : Context.verify_stats) -> s.vs_misses))
    merged.vs_misses;
  Alcotest.(check int)
    "merged entries = sum of shard entries"
    (sum (fun (s : Context.verify_stats) ->
         s.vs_ty_entries + s.vs_attr_entries))
    (merged.vs_ty_entries + merged.vs_attr_entries);
  List.iter
    (fun (s : Context.verify_stats) ->
      Alcotest.(check int) "per-shard invalidations are 0" 0 s.vs_invalidations)
    shards;
  (* Each hammering domain resolved the same types, so every shard that
     did work has misses and (with 10 iterations each) hits. *)
  Alcotest.(check bool) "merged cache hit" true (merged.vs_hits > 0)

let test_cache_disabled_bypasses_shards () =
  let ctx = cmath_ctx () in
  Context.set_verify_cache ctx false;
  Context.freeze ctx;
  ignore (hammer ctx 5 ());
  Array.init 2 (fun _ -> Domain.spawn (hammer ctx 5))
  |> Array.iter (fun d -> ignore (Domain.join d));
  let merged = (Context.stats ctx).st_verify in
  Alcotest.(check int) "no entries in any shard" 0
    (merged.vs_ty_entries + merged.vs_attr_entries);
  Alcotest.(check int) "no hits counted" 0 merged.vs_hits;
  Alcotest.(check int) "no misses counted" 0 merged.vs_misses

let suite =
  [
    tc "pool: empty batch" test_pool_empty;
    tc "pool: positional results" test_pool_positional;
    tc "pool: unbalanced batch (stealing)" test_pool_unbalanced;
    tc "pool: reusable across batches" test_pool_reuse;
    tc "pool: lowest-index exception, pool survives" test_pool_exception;
    tc "pool: caller-task exception" test_pool_caller_exception;
    tc "pool: multi-failure determinism across rounds"
      test_pool_multi_failure_determinism;
    tc "pool: 1 domain degrades to sequential" test_pool_sequential_degenerate;
    tc "pool: shutdown is final and idempotent" test_pool_shutdown;
    tc "pool: re-entrant run rejected" test_pool_reentrant;
    tc "pool: size < 1 rejected" test_pool_bad_size;
    tc "freeze: post-freeze registration rejected" test_freeze_rejects;
    tc "freeze: dialect load rejected" test_freeze_rejects_dialect_load;
    tc "freeze: register-vs-freeze race is clean" test_freeze_register_race;
    tc "frozen context: N domains agree with 1" test_hammer_frozen_context;
    tc "interning: cross-domain construction" test_cross_domain_interning;
    tc "verify cache: merged stats = sum of shards" test_shard_stats_merge;
    tc "verify cache: disabled bypasses all shards"
      test_cache_disabled_bypasses_shards;
  ]
