CLI integration tests for irdl-opt and irdl-stats.

A dialect definition, a rewrite pattern and a program, all plain text:

  $ cat > poly.irdl <<'EOF'
  > Dialect poly {
  >   Type poly {
  >     Parameters (coeff: !AnyOf<!f32, !f64>)
  >     Summary "A dense univariate polynomial"
  >   }
  >   Operation eval {
  >     ConstraintVars (T: !AnyOf<!f32, !f64>)
  >     Operands (p: !poly<!T>, at: !T)
  >     Results (res: !T)
  >     Format "$p, $at : $T"
  >     Summary "Evaluate a polynomial at a point"
  >   }
  >   Operation mul {
  >     ConstraintVars (T: !poly<AnyOf<!f32, !f64>>)
  >     Operands (lhs: !T, rhs: !T)
  >     Results (res: !T)
  >     Summary "Polynomial multiplication"
  >   }
  > }
  > EOF

  $ cat > opt.pat <<'EOF'
  > Pattern eval_of_mul {
  >   Match (poly.eval (poly.mul $p $q) $x)
  >   Rewrite (arith.mulf (poly.eval $p $x : $x) (poly.eval $q $x : $x) : $x)
  > }
  > EOF

  $ cat > prog.mlir <<'EOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %q: !poly.poly<f32>, %x: f32):
  >   %pq = "poly.mul"(%p, %q) : (!poly.poly<f32>, !poly.poly<f32>) -> !poly.poly<f32>
  >   %y = poly.eval %pq, %x : f32
  >   "func.return"(%y) : (f32) -> ()
  > }) {sym_name = "eval_product"} : () -> ()
  > EOF

Parse, verify and re-print against the dynamically loaded dialect:

  $ irdl-opt -d poly.irdl prog.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: !poly.poly<f32>, %2: f32):
    %3 = "poly.mul"(%0, %1) : (!poly.poly<f32>, !poly.poly<f32>) -> (!poly.poly<f32>)
    %4 = poly.eval %3, %2 : f32
    "func.return"(%4) : (f32) -> ()
  }) {sym_name = "eval_product"} : () -> ()

Apply the textual rewrite pattern:

  $ irdl-opt -d poly.irdl -p opt.pat prog.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: !poly.poly<f32>, %2: f32):
    %3 = poly.eval %0, %2 : f32
    %4 = poly.eval %1, %2 : f32
    %5 = "arith.mulf"(%3, %4) : (f32, f32) -> (f32)
    "func.return"(%5) : (f32) -> ()
  }) {sym_name = "eval_product"} : () -> ()

Verification failures are reported with locations and exit code 1:

  $ cat > bad.mlir <<'EOF'
  > "t.wrap"() ({
  > ^bb0(%p: !poly.poly<i32>):
  >   "t.use"(%p) : (!poly.poly<i32>) -> ()
  > }) : () -> ()
  > EOF
  $ irdl-opt -d poly.irdl bad.mlir
  bad.mlir:3:3-10: error: type 'poly.poly': parameter 'coeff': i32 satisfies no alternative of AnyOf
    3 |   "t.use"(%p) : (!poly.poly<i32>) -> ()
      |   ^~~~~~~
  [2]

The formatter normalizes IRDL sources:

  $ echo 'Dialect d { Operation o { Operands (x: !f32) Summary "an op" } }' > d.irdl
  $ irdl-stats --fmt d.irdl
  Dialect d {
  
    Operation o {
      Operands (x: !f32)
      Summary "an op"
    }
  }


Documentation generation from a user-provided dialect:

  $ irdl-stats --doc poly poly.irdl | head -8
  # Dialect `poly`
  
  2 operations, 1 types, 0 attributes, 0 enums.
  
  ### type `poly`
  
  A dense univariate polynomial
  




One figure of the paper's evaluation, from the bundled corpus:

  $ irdl-stats --only table1 | tail -3
    vector         A generic vector abstraction
    x86vector      The Intel x86 vector instruction set
    total: 28 dialects, 942 operations, 62 types, 32 attributes  (paper: 28 / 942 / 62 / 30)

SSA dominance checking (--dominance is the deprecated alias of
--pass-pipeline verify-dominance; both spellings must agree):

  $ cat > nodom.mlir <<'XEOF'
  > "t.wrap"() ({
  > ^bb0:
  >   "t.use"(%later) : (i32) -> ()
  >   %later = "t.def"() : () -> i32
  > }) : () -> ()
  > XEOF
  $ irdl-opt --dominance --verify-only nodom.mlir
  nodom.mlir:3:3-10: error: operand 0 of 't.use' is not dominated by its definition
    3 |   "t.use"(%later) : (i32) -> ()
      |   ^~~~~~~
    note: while running pass 'verify-dominance'
  [2]
  $ irdl-opt --pass-pipeline verify-dominance --verify-only nodom.mlir
  nodom.mlir:3:3-10: error: operand 0 of 't.use' is not dominated by its definition
    3 |   "t.use"(%later) : (i32) -> ()
      |   ^~~~~~~
    note: while running pass 'verify-dominance'
  [2]
  $ irdl-opt --verify-only nodom.mlir

Cross-references (find-references over IRDL definitions):

  $ irdl-stats --xref F poly.irdl 2>/dev/null || true
  $ irdl-stats --xref poly poly.irdl | head -2
  dialect poly.poly  defined at poly.irdl:1:1-poly.irdl:20:1, 0 reference(s)
  type poly.poly  defined at poly.irdl:2:3-poly.irdl:6:12, 2 reference(s)

CSE through the CLI, in both spellings (--cse is the deprecated alias of
--pass-pipeline cse):

  $ cat > dup.mlir <<'XEOF'
  > "func.func"() ({
  > ^bb0(%p: !poly.poly<f32>, %x: f32):
  >   %a = poly.eval %p, %x : f32
  >   %b = poly.eval %p, %x : f32
  >   "t.use"(%a, %b) : (f32, f32) -> ()
  > }) : () -> ()
  > XEOF
  $ irdl-opt -d poly.irdl --cse dup.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: f32):
    %2 = poly.eval %0, %1 : f32
    "t.use"(%2, %2) : (f32, f32) -> ()
  }) : () -> ()
  $ irdl-opt -d poly.irdl --pass-pipeline cse dup.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: f32):
    %2 = poly.eval %0, %1 : f32
    "t.use"(%2, %2) : (f32, f32) -> ()
  }) : () -> ()

A full textual pipeline (the explicit spelling of "-p plus cleanups"):

  $ irdl-opt -d poly.irdl -p opt.pat --pass-pipeline "canonicalize,cse,dce" prog.mlir
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: !poly.poly<f32>, %2: f32):
    %3 = poly.eval %0, %2 : f32
    %4 = poly.eval %1, %2 : f32
    %5 = "arith.mulf"(%3, %4) : (f32, f32) -> (f32)
    "func.return"(%5) : (f32) -> ()
  }) {sym_name = "eval_product"} : () -> ()

Malformed pipelines are located diagnostics, not exceptions:

  $ irdl-opt --pass-pipeline "cse,nope" dup.mlir
  <pass-pipeline>:1:5-9: error: unknown pass 'nope' in pipeline
    note: available passes: canonicalize, cse, dce, verify-dominance
  [1]
  $ irdl-opt --pass-pipeline "cse,dce," dup.mlir
  <pass-pipeline>:1:8-9: error: trailing comma in pass pipeline
  [1]
  $ irdl-opt --pass-pipeline "cse,,dce" dup.mlir
  <pass-pipeline>:1:5: error: empty pass name in pipeline
  [1]
  $ irdl-opt --pass-pipeline "cse,cse" dup.mlir
  <pass-pipeline>:1:5-8: error: duplicate pass 'cse' in pipeline
    <pass-pipeline>:1:1-4: note: first occurrence here
  [1]
  $ irdl-opt --pass-pipeline "" dup.mlir
  <pass-pipeline>:1:1: error: empty pass pipeline
  [1]

Per-pass wall-clock timing, as a text report and as machine-readable JSON
(times normalized for reproducibility):

  $ irdl-opt -d poly.irdl --pass-pipeline "cse,dce" --verify-only --pass-timing timing.txt --pass-timing-json timing.json dup.mlir
  $ sed -E 's/[0-9]+\.[0-9]+/T/g; s/  +/ /g; s/ +$//' timing.txt
  ===------------------------------------------------------------===
   pass execution timing report
  ===------------------------------------------------------------===
   total wall-clock: T s
   time (s) share pass statistics
   T T% cse examined=2, eliminated=1
   T T% dce erased=0
  $ sed -E 's/[0-9]+\.[0-9]+/T/g' timing.json
  {
    "total_s": T,
    "passes": [
      { "pass": "cse", "time_s": T, "stats": { "examined": 2, "eliminated": 1 } },
      { "pass": "dce", "time_s": T, "stats": { "erased": 0 } }
    ]
  }

IR snapshots around passes go to stderr:

  $ irdl-opt -d poly.irdl --pass-pipeline cse --print-ir-after cse --verify-only dup.mlir
  // -----// IR dump after cse //----- //
  "func.func"() ({
  ^bb0(%0: !poly.poly<f32>, %1: f32):
    %2 = "poly.eval"(%0, %1) : (!poly.poly<f32>, f32) -> (f32)
    "t.use"(%2, %2) : (f32, f32) -> ()
  }) : () -> ()

--verify-each re-runs the verifier between passes and attributes a failure
to the offending pass by name; without it, the transformed IR is still
re-verified after the pipeline (no silent soundness hole), only without
the attribution:

  $ cat > break.pat <<'EOF'
  > Pattern break_types {
  >   Match (poly.eval $p $x)
  >   Rewrite (poly.eval $x $x : $x)
  > }
  > EOF
  $ irdl-opt -d poly.irdl -p break.pat --verify-each prog.mlir
  error: IR verification failed after pass 'canonicalize': 'poly.eval': operand 'p': expected a !poly.poly type, got f32
  [2]
  $ irdl-opt -d poly.irdl -p break.pat prog.mlir
  error: 'poly.eval': operand 'p': expected a !poly.poly type, got f32
  [2]
