The resident service must be indistinguishable from one-shot runs: same
diagnostics bytes, same output bytes, same exit codes — the determinism
gate CI enforces with cmp. The listener drains in-flight requests and
removes its socket on SIGTERM.

  $ cat > good.mlir <<'EOF'
  > %c = "t.cast"() : () -> (!cmath.complex<f32>)
  > %n = "cmath.norm"(%c) : (!cmath.complex<f32>) -> (f32)
  > EOF
  $ cat > badverify.mlir <<'EOF'
  > %c = "t.cast"() : () -> (!cmath.complex<f32>)
  > %n = "cmath.norm"(%c) : (!cmath.complex<f32>) -> (i32)
  > EOF
  $ cat > badparse.mlir <<'EOF'
  > %x = "t.oops"( : () -> (i32)
  > EOF

Start a listener with two worker domains, wait for the socket to bind:

  $ irdl-opt --cmath --listen srv.sock -j 2 &
  $ SRV=$!
  $ n=0; while [ ! -S srv.sock ] && [ $n -lt 200 ]; do sleep 0.05; n=$((n+1)); done
  $ [ -S srv.sock ] && echo socket up
  socket up

A clean module: the client's stdout/stderr/exit must match one-shot's
byte for byte:

  $ irdl-opt --cmath good.mlir > oneshot.out 2> oneshot.err; echo "exit: $?"
  exit: 0
  $ irdl-opt --connect srv.sock good.mlir > client.out 2> client.err; echo "exit: $?"
  exit: 0
  $ cmp oneshot.out client.out && cmp oneshot.err client.err && echo identical
  identical

A verify failure — same diagnostics (caret snippets included), same
verify-class exit code:

  $ irdl-opt --cmath badverify.mlir > oneshot.out 2> oneshot.err; echo "exit: $?"
  exit: 2
  $ irdl-opt --connect srv.sock badverify.mlir > client.out 2> client.err; echo "exit: $?"
  exit: 2
  $ cmp oneshot.out client.out && cmp oneshot.err client.err && echo identical
  identical

A parse failure likewise:

  $ irdl-opt --cmath badparse.mlir > oneshot.out 2> oneshot.err; echo "exit: $?"
  exit: 1
  $ irdl-opt --connect srv.sock badparse.mlir > client.out 2> client.err; echo "exit: $?"
  exit: 1
  $ cmp oneshot.out client.out && cmp oneshot.err client.err && echo identical
  identical

Request-side budgets ride along with --connect; a blown budget is a
structured parse-class failure, not a hang or a crash:

  $ irdl-opt --connect srv.sock --max-ops 1 good.mlir > /dev/null 2> budget.err; echo "exit: $?"
  exit: 1
  $ grep -c "operation limit of 1 exceeded" budget.err
  1

SIGTERM: the server drains and exits cleanly, removing the socket:

  $ kill -TERM $SRV
  $ wait $SRV; echo "server exit: $?"
  server exit: 0
  $ [ ! -e srv.sock ] && echo socket removed
  socket removed

After shutdown the client reports a transport error (exit 4), it does
not hang:

  $ irdl-opt --connect srv.sock good.mlir > /dev/null 2> gone.err; echo "exit: $?"
  exit: 4
  $ grep -c "irdl-opt: --connect:" gone.err
  1
