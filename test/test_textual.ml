(** Tests for the textual pattern language: the fully dynamic rewrite flow
    (dialect from IRDL text + patterns from pattern text + IR from IR text,
    no host code anywhere). *)

open Irdl_ir
open Util

let conorm ctx =
  parse_op ctx
    {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %np = cmath.norm %p : f32
  %nq = cmath.norm %q : f32
  %m = "arith.mulf"(%np, %nq) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}

let count scope name =
  let n = ref 0 in
  Graph.Op.walk scope ~f:(fun o -> if Graph.Op.name o = name then incr n);
  !n

let parse_ok ctx src =
  check_ok "patterns" (Irdl_rewrite.Textual.parse_patterns ctx src)

let norm_mul_src =
  {|
// The paper's Listing 1 optimization, defined purely in text.
Pattern norm_of_mul {
  Benefit 2
  Match (arith.mulf (cmath.norm $p) (cmath.norm $q))
  Rewrite (cmath.norm (cmath.mul $p $q : $p) : f32)
}
|}

let full_dynamic_flow () =
  let ctx = cmath_ctx () in
  let patterns = parse_ok ctx norm_mul_src in
  Alcotest.(check int) "one pattern" 1 (List.length patterns);
  Alcotest.(check int) "benefit" 2 (List.hd patterns).Irdl_rewrite.Pattern.benefit;
  let func = conorm ctx in
  let stats = Irdl_rewrite.Driver.apply ctx patterns func in
  Alcotest.(check int) "applied" 1 (Irdl_rewrite.Driver.applications stats);
  Alcotest.(check int) "mul" 1 (count func "cmath.mul");
  Alcotest.(check int) "norm" 1 (count func "cmath.norm");
  Alcotest.(check int) "mulf gone" 0 (count func "arith.mulf");
  verify_ok ctx func

let inferred_result_type () =
  (* no ascription: result type inferred from the first capture *)
  let ctx = cmath_ctx () in
  let patterns =
    parse_ok ctx
      {|Pattern swap { Match (cmath.mul $a $b) Rewrite (cmath.mul $b $a) }|}
  in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %m = cmath.mul %p, %q : f32
  "func.return"(%m) : (!cmath.complex<f32>) -> ()
}) : () -> ()
|}
  in
  let stats = Irdl_rewrite.Driver.apply ~max_iterations:1 ctx patterns func in
  Alcotest.(check bool) "applied at least once" true
    ((Irdl_rewrite.Driver.applications stats) >= 1);
  verify_ok ctx func

let multiple_patterns () =
  let ctx = cmath_ctx () in
  let ps =
    parse_ok ctx
      {|
Pattern a { Match (cmath.mul $x $y) Rewrite (cmath.mul $y $x) }
Pattern b { Benefit 3 Match (cmath.norm $c) Rewrite (cmath.norm $c) }
|}
  in
  Alcotest.(check int) "two" 2 (List.length ps);
  Alcotest.(check (list string)) "names" [ "a"; "b" ]
    (List.map (fun (p : Irdl_rewrite.Pattern.t) -> p.name) ps)

let unbound_capture_rejected () =
  let ctx = cmath_ctx () in
  check_err_containing "unbound" "not bound"
    (Irdl_rewrite.Textual.parse_patterns ctx
       {|Pattern bad { Match (cmath.norm $a) Rewrite (cmath.norm $zzz) }|})

let capture_root_rejected () =
  let ctx = cmath_ctx () in
  check_err_containing "root" "must be an operation"
    (Irdl_rewrite.Textual.parse_patterns ctx
       {|Pattern bad { Match $x Rewrite $x }|})

let unqualified_op_rejected () =
  let ctx = cmath_ctx () in
  check_err_containing "unqualified" "dialect-qualified"
    (Irdl_rewrite.Textual.parse_patterns ctx
       {|Pattern bad { Match (norm $a) Rewrite (norm $a) }|})

let uninferrable_type_rejected () =
  let ctx = cmath_ctx () in
  check_err_containing "no type" "cannot infer"
    (Irdl_rewrite.Textual.parse_patterns ctx
       {|Pattern bad { Match (cmath.norm $a) Rewrite (cmath.create_constant) }|})

let syntax_errors () =
  let ctx = cmath_ctx () in
  ignore
    (check_err "missing brace"
       (Irdl_rewrite.Textual.parse_patterns ctx
          {|Pattern p { Match (cmath.norm $a) Rewrite (cmath.norm $a)|}));
  ignore
    (check_err "bad keyword"
       (Irdl_rewrite.Textual.parse_patterns ctx
          {|Rule p { Match (cmath.norm $a) Rewrite (cmath.norm $a) }|}))

let concrete_type_ascription () =
  let ctx = cmath_ctx () in
  let ps =
    parse_ok ctx
      {|Pattern p {
          Match (cmath.norm $c)
          Rewrite (cmath.norm $c : !cmath.complex<f64>)
        }|}
  in
  Alcotest.(check int) "parsed" 1 (List.length ps)

let suite =
  [
    tc "fully dynamic rewrite flow (Listing 1 from text)" full_dynamic_flow;
    tc "result type inference from captures" inferred_result_type;
    tc "multiple patterns per source" multiple_patterns;
    tc "unbound rewrite captures rejected" unbound_capture_rejected;
    tc "capture at match root rejected" capture_root_rejected;
    tc "unqualified op names rejected" unqualified_op_rejected;
    tc "uninferrable result types rejected" uninferrable_type_rejected;
    tc "syntax errors reported" syntax_errors;
    tc "concrete type ascriptions" concrete_type_ascription;
  ]
