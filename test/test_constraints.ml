(** Tests for the constraint language and its evaluator — one test per
    constructor of the paper's Figure 2, plus constraint-variable and
    IRDL-C++ semantics. *)

open Irdl_ir
module C = Irdl_core.Constraint_expr
open Util

let native = Irdl_core.Native.create ()

let sat ?(env = C.empty_env) c a =
  match C.verify ~native ~env c a with Ok _ -> true | Error _ -> false

let check_sat name c a = Alcotest.(check bool) name true (sat c a)
let check_unsat name c a = Alcotest.(check bool) name false (sat c a)

let tyv t = Attr.typ t

let any_constraints () =
  check_sat "AnyParam matches attr" C.Any (Attr.int 1L);
  check_sat "AnyParam matches type" C.Any (tyv Attr.f32);
  check_sat "AnyType matches type" C.Any_type (tyv Attr.f32);
  check_unsat "AnyType rejects attr" C.Any_type (Attr.int 1L);
  check_sat "AnyAttr matches" C.Any_attr (Attr.string "s")

let equality () =
  check_sat "type eq" (C.Eq (tyv Attr.f32)) (tyv Attr.f32);
  check_unsat "type neq" (C.Eq (tyv Attr.f32)) (tyv Attr.f64);
  check_sat "int literal" (C.Eq (Attr.int 3L)) (Attr.int 3L);
  check_unsat "int literal value" (C.Eq (Attr.int 3L)) (Attr.int 4L);
  check_sat "string literal" (C.Eq (Attr.string "foo")) (Attr.string "foo");
  check_sat "enum case"
    (C.Eq (Attr.enum ~dialect:"d" ~enum:"e" "A"))
    (Attr.enum ~dialect:"d" ~enum:"e" "A");
  check_unsat "enum case differs"
    (C.Eq (Attr.enum ~dialect:"d" ~enum:"e" "A"))
    (Attr.enum ~dialect:"d" ~enum:"e" "B")

let base_type () =
  let base = C.Base_type { dialect = "cmath"; name = "complex"; params = None } in
  check_sat "base no params" base (tyv complex_f32);
  check_sat "base any params" base (tyv complex_f64);
  check_unsat "other dialect" base
    (tyv (Attr.dynamic ~dialect:"other" ~name:"complex" []));
  check_unsat "not a dynamic type" base (tyv Attr.f32);
  let withp =
    C.Base_type
      { dialect = "cmath"; name = "complex"; params = Some [ C.Eq (tyv Attr.f32) ] }
  in
  check_sat "param match" withp (tyv complex_f32);
  check_unsat "param mismatch" withp (tyv complex_f64);
  let wrong_arity =
    C.Base_type { dialect = "cmath"; name = "complex"; params = Some [] }
  in
  check_unsat "arity" wrong_arity (tyv complex_f32)

let base_attr () =
  let a = Attr.Dyn_attr { dialect = "d"; name = "a"; params = [ Attr.int 1L ] } in
  check_sat "base attr"
    (C.Base_attr { dialect = "d"; name = "a"; params = None })
    a;
  check_sat "param"
    (C.Base_attr { dialect = "d"; name = "a"; params = Some [ C.Eq (Attr.int 1L) ] })
    a;
  check_unsat "not dyn attr"
    (C.Base_attr { dialect = "d"; name = "a"; params = None })
    (Attr.int 1L)

let int_params () =
  let u8 = C.Int_param { C.ik_width = 8; ik_signedness = Attr.Unsigned } in
  let mk ?(sign = Attr.Unsigned) v w =
    Attr.Int { value = v; ty = Attr.integer ~signedness:sign w }
  in
  check_sat "in range" u8 (mk 200L 8);
  check_unsat "out of range" u8 (mk 300L 8);
  check_unsat "negative for unsigned" u8 (mk (-1L) 8);
  check_unsat "wrong width" u8 (mk 1L 16);
  check_sat "signless accepted" u8
    (Attr.Int { value = 5L; ty = Attr.i8 });
  let s8 = C.Int_param { C.ik_width = 8; ik_signedness = Attr.Signed } in
  check_sat "signed low" s8 (mk ~sign:Attr.Signed (-128L) 8);
  check_unsat "signed overflow" s8 (mk ~sign:Attr.Signed 128L 8);
  check_unsat "not an int" u8 (Attr.string "8")

let float_params () =
  check_sat "any float" (C.Float_param None) (Attr.float 1.0);
  check_sat "f32" (C.Float_param (Some Attr.F32))
    (Attr.float ~ty:Attr.f32 1.0);
  check_unsat "kind mismatch" (C.Float_param (Some Attr.F32)) (Attr.float 1.0);
  check_unsat "not a float" (C.Float_param None) (Attr.int 1L)

let scalar_params () =
  check_sat "string" C.String_param (Attr.string "x");
  check_unsat "string rejects int" C.String_param (Attr.int 1L);
  check_sat "symbol" C.Symbol_param (Attr.symbol "f");
  check_sat "bool" C.Bool_param (Attr.bool true);
  check_sat "location" C.Location_param
    (Attr.Location { file = "f"; line = 1; col = 1 });
  check_sat "type id" C.Type_id_param (Attr.Type_id "X")

let enum_params () =
  let c = C.Enum_param { dialect = "d"; enum = "e" } in
  check_sat "any case" c (Attr.enum ~dialect:"d" ~enum:"e" "A");
  check_sat "other case" c (Attr.enum ~dialect:"d" ~enum:"e" "B");
  check_unsat "other enum" c (Attr.enum ~dialect:"d" ~enum:"f" "A")

let arrays () =
  check_sat "array any" C.Array_any (Attr.array [ Attr.int 1L ]);
  check_unsat "array any rejects scalar" C.Array_any (Attr.int 1L);
  let ints = C.Array_of (C.Int_param { C.ik_width = 64; ik_signedness = Attr.Signed }) in
  check_sat "array<int64>" ints (Attr.array [ Attr.int 1L; Attr.int 2L ]);
  check_sat "empty ok" ints (Attr.array []);
  check_unsat "bad element" ints (Attr.array [ Attr.string "x" ]);
  let exact = C.Array_exact [ C.Any_type; C.String_param ] in
  check_sat "exact" exact (Attr.array [ tyv Attr.f32; Attr.string "s" ]);
  check_unsat "exact length" exact (Attr.array [ tyv Attr.f32 ]);
  check_unsat "exact order" exact (Attr.array [ Attr.string "s"; tyv Attr.f32 ])

let combinators () =
  let f32_or_f64 = C.Any_of [ C.Eq (tyv Attr.f32); C.Eq (tyv Attr.f64) ] in
  check_sat "anyof 1" f32_or_f64 (tyv Attr.f32);
  check_sat "anyof 2" f32_or_f64 (tyv Attr.f64);
  check_unsat "anyof none" f32_or_f64 (tyv Attr.i32);
  (* And<int32_t, Not<0 : int32_t>> — the paper's non-null example *)
  let nonzero =
    C.And
      [
        C.Int_param { C.ik_width = 32; ik_signedness = Attr.Signed };
        C.Not (C.Eq (Attr.Int { value = 0L; ty = Attr.integer ~signedness:Attr.Signed 32 }));
      ]
  in
  check_sat "nonzero ok"
    nonzero
    (Attr.Int { value = 5L; ty = Attr.integer ~signedness:Attr.Signed 32 });
  check_unsat "zero rejected" nonzero
    (Attr.Int { value = 0L; ty = Attr.integer ~signedness:Attr.Signed 32 });
  check_sat "not" (C.Not C.String_param) (Attr.int 1L);
  check_unsat "not rejects" (C.Not C.String_param) (Attr.string "s")

let variables () =
  let v = { C.v_name = "T"; v_constraint = C.Any_type } in
  let c = C.Var v in
  (* First use binds, second must be equal. *)
  let env = C.empty_env in
  let env =
    match C.verify ~native ~env c (tyv Attr.f32) with
    | Ok env -> env
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "same rebind ok" true
    (Result.is_ok (C.verify ~native ~env c (tyv Attr.f32)));
  Alcotest.(check bool) "different rejected" false
    (Result.is_ok (C.verify ~native ~env c (tyv Attr.f64)));
  (* The variable's own constraint is checked at bind time. *)
  let bad = C.Var { C.v_name = "U"; v_constraint = C.String_param } in
  check_unsat "var constraint" bad (tyv Attr.f32)

let variables_in_not () =
  (* Bindings inside a negation must not leak. *)
  let v = { C.v_name = "T"; v_constraint = C.Eq (tyv Attr.i32) } in
  let c = C.Not (C.Var v) in
  match C.verify ~native ~env:C.empty_env c (tyv Attr.f32) with
  | Ok env -> Alcotest.(check bool) "no leak" true (C.Env.is_empty env)
  | Error e -> Alcotest.fail e

(* The interpreted evaluator must restore the environment when a branch
   fails: bindings made inside a failed [AnyOf] alternative or a failed
   [And] conjunct must not leak into subsequent checks. (The env is a
   persistent map, so this holds by construction — these tests pin the
   behaviour down so a future mutable-env optimisation cannot silently
   break it.) *)
let env_restoration_anyof () =
  let v = { C.v_name = "T"; v_constraint = C.Any_type } in
  (* First alternative binds T, then fails on String_param; the succeeding
     second alternative must see no binding for T. *)
  let c = C.Any_of [ C.And [ C.Var v; C.String_param ]; C.Any_type ] in
  (match C.verify ~native ~env:C.empty_env c (tyv Attr.f32) with
  | Ok env ->
      Alcotest.(check bool) "failed branch binding dropped" true
        (C.Env.is_empty env)
  | Error e -> Alcotest.fail e);
  (* With T pre-bound to f64, the first alternative fails on the Var
     equality; the pre-existing binding must survive untouched. *)
  let env0 = C.Env.add "T" (tyv Attr.f64) C.empty_env in
  let c' = C.Any_of [ C.And [ C.Var v; C.Any ]; C.Any_type ] in
  match C.verify ~native ~env:env0 c' (tyv Attr.f32) with
  | Ok env ->
      Alcotest.(check bool) "pre-existing binding intact" true
        (C.Env.equal Attr.equal env env0)
  | Error e -> Alcotest.fail e

let env_restoration_and () =
  let v = { C.v_name = "T"; v_constraint = C.Any_type } in
  (* The And fails on its second conjunct after the first bound T: the
     caller's environment must be unchanged by the failed check. *)
  let env0 = C.empty_env in
  let c = C.And [ C.Var v; C.String_param ] in
  (match C.verify ~native ~env:env0 c (tyv Attr.f32) with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  Alcotest.(check bool) "caller env unchanged" true (C.Env.is_empty env0);
  (* The same failed And inside an enclosing AnyOf: a later use of T must
     bind fresh, not see the failed conjunct's binding. *)
  let c' = C.Any_of [ c; C.Var v ] in
  match C.verify ~native ~env:C.empty_env c' (tyv Attr.f64) with
  | Ok env ->
      Alcotest.(check bool) "T re-bound by surviving branch" true
        (match C.Env.find_opt "T" env with
        | Some a -> Attr.equal a (tyv Attr.f64)
        | None -> false)
  | Error e -> Alcotest.fail e

let natives () =
  let n = Irdl_core.Native.create () in
  Irdl_core.Native.register_param_hook n "$_self > 0" (fun a ->
      match a with Attr.Int { value; _ } -> value > 0L | _ -> false);
  let c =
    C.Native
      { name = "Pos"; base = C.Int_param { C.ik_width = 64; ik_signedness = Attr.Signless };
        snippets = [ "$_self > 0" ] }
  in
  let ok a = Result.is_ok (C.verify ~native:n ~env:C.empty_env c a) in
  Alcotest.(check bool) "positive" true (ok (Attr.int 3L));
  Alcotest.(check bool) "zero" false (ok (Attr.int 0L));
  (* base constraint is still enforced *)
  Alcotest.(check bool) "base" false (ok (Attr.string "3"))

let natives_unregistered () =
  (* Non-strict: unresolved snippets accept and are recorded. *)
  let n = Irdl_core.Native.create () in
  let c = C.Native { name = "X"; base = C.Any; snippets = [ "mystery()" ] } in
  Alcotest.(check bool) "accepted" true
    (Result.is_ok (C.verify ~native:n ~env:C.empty_env c (Attr.int 1L)));
  Alcotest.(check (list string)) "recorded" [ "mystery()" ]
    (Irdl_core.Native.unresolved n);
  (* Strict mode: hard error. *)
  let strict = Irdl_core.Native.create ~strict:true () in
  Alcotest.(check bool) "strict rejects" false
    (Result.is_ok (C.verify ~native:strict ~env:C.empty_env c (Attr.int 1L)))

let native_params () =
  let c = C.Native_param { name = "StringParam"; class_name = "char*" } in
  check_sat "tag match" c (Attr.opaque ~tag:"StringParam" "x");
  check_unsat "tag mismatch" c (Attr.opaque ~tag:"Other" "x");
  check_unsat "not opaque" c (Attr.string "x")

let variadic_transparent () =
  check_sat "variadic element" (C.Variadic (C.Eq (tyv Attr.i32))) (tyv Attr.i32);
  check_sat "optional element" (C.Optional (C.Eq (tyv Attr.i32))) (tyv Attr.i32);
  Alcotest.(check bool) "is_variadic" true (C.is_variadic (C.Variadic C.Any));
  Alcotest.(check bool) "optional is variadic" true
    (C.is_variadic (C.Optional C.Any));
  Alcotest.(check bool) "is_optional" false (C.is_optional (C.Variadic C.Any));
  Alcotest.(check bool) "strip" true
    (C.strip_variadic (C.Variadic (C.Optional C.Any)) = C.Any)

let pp_syntax () =
  Alcotest.(check string) "anyof" "AnyOf<!AnyType, string>"
    (C.to_string (C.Any_of [ C.Any_type; C.String_param ]));
  Alcotest.(check string) "int kind" "uint8_t"
    (C.to_string (C.Int_param { C.ik_width = 8; ik_signedness = Attr.Unsigned }));
  Alcotest.(check string) "base" "!cmath.complex<f32>"
    (C.to_string
       (C.Base_type
          { dialect = "cmath"; name = "complex";
            params = Some [ C.Eq (tyv Attr.f32) ] }))

(* Properties over random attributes *)
let attr_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun i -> Attr.int (Int64.of_int i)) small_int;
      map Attr.string string_printable;
      map Attr.bool bool;
      return (Attr.typ Attr.f32);
      return (Attr.typ Attr.i32);
      map (fun l -> Attr.array (List.map (fun i -> Attr.int (Int64.of_int i)) l))
        (small_list small_int);
    ]

let prop_not_involutive =
  QCheck2.Test.make ~name:"Not<Not<c>> agrees with c" ~count:300 attr_gen
    (fun a ->
      let cs = [ C.Any_type; C.String_param; C.Array_any; C.Any ] in
      List.for_all
        (fun c -> sat (C.Not (C.Not c)) a = sat c a)
        cs)

let prop_anyof_or =
  QCheck2.Test.make ~name:"AnyOf is disjunction" ~count:300 attr_gen (fun a ->
      let c1 = C.String_param and c2 = C.Array_any in
      sat (C.Any_of [ c1; c2 ]) a = (sat c1 a || sat c2 a))

let prop_and_conj =
  QCheck2.Test.make ~name:"And is conjunction" ~count:300 attr_gen (fun a ->
      let c1 = C.Any_attr and c2 = C.String_param in
      sat (C.And [ c1; c2 ]) a = (sat c1 a && sat c2 a))

let prop_eq_reflexive =
  QCheck2.Test.make ~name:"Eq is satisfied by its own value" ~count:300
    attr_gen (fun a -> sat (C.Eq a) a)

let suite =
  [
    tc "Any / AnyType / AnyAttr" any_constraints;
    tc "equality constraints" equality;
    tc "base type constraints" base_type;
    tc "base attribute constraints" base_attr;
    tc "integer parameter kinds and ranges" int_params;
    tc "float parameters" float_params;
    tc "string/symbol/bool/location/type-id parameters" scalar_params;
    tc "enum parameters" enum_params;
    tc "array constraints" arrays;
    tc "AnyOf / And / Not" combinators;
    tc "constraint variables bind once" variables;
    tc "negation discards bindings" variables_in_not;
    tc "failed AnyOf branches restore the env" env_restoration_anyof;
    tc "failed And conjuncts restore the env" env_restoration_and;
    tc "native constraints run registered hooks" natives;
    tc "unregistered snippets: counted or strict" natives_unregistered;
    tc "native parameters match tags" native_params;
    tc "variadic wrappers are element-transparent" variadic_transparent;
    tc "constraint pretty-printing" pp_syntax;
    QCheck_alcotest.to_alcotest prop_not_involutive;
    QCheck_alcotest.to_alcotest prop_anyof_or;
    QCheck_alcotest.to_alcotest prop_and_conj;
    QCheck_alcotest.to_alcotest prop_eq_reflexive;
  ]
