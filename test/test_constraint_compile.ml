(** Differential tests for the compiled constraint checkers.

    {!Irdl_core.Constraint_expr.compile} must be observationally equivalent
    to the interpreted {!Irdl_core.Constraint_expr.verify}: same
    accept/reject decision, same final environment bindings, same failure
    message, on every constraint tree and attribute. The interpreter is the
    reference oracle; these properties run the two against each other on
    generated constraint/attribute pairs (1000+ cases per run), including
    shared constraint variables, nested [AnyOf] and negation. *)

open Irdl_ir
module C = Irdl_core.Constraint_expr
open QCheck2.Gen

let native = Irdl_core.Native.create ()

(* ---------------- generators ---------------- *)

(* A deliberately small attribute pool so that generated constraints accept
   generated attributes often enough to exercise the success paths (and the
   environments they build), not just the failure messages. *)
let base_attrs =
  [
    Attr.typ Attr.f32;
    Attr.typ Attr.f64;
    Attr.typ Attr.i32;
    Attr.typ (Attr.dynamic ~dialect:"cmath" ~name:"complex"
                [ Attr.typ Attr.f32 ]);
    Attr.int 0L;
    Attr.int 3L;
    Attr.int ~ty:Attr.i32 1L;
    Attr.float 1.5;
    Attr.float ~ty:Attr.f32 0.25;
    Attr.string "a";
    Attr.string "b";
    Attr.bool true;
    Attr.unit;
    Attr.symbol "sym";
    Attr.enum ~dialect:"d" ~enum:"e" "A";
    Attr.enum ~dialect:"d" ~enum:"e" "B";
    Attr.opaque ~tag:"P" "x";
    Attr.opaque ~tag:"Q" "y";
    Attr.type_id "X";
    Attr.location ~file:"f.mlir" ~line:1 ~col:2;
  ]

let attr_gen =
  let scalar = oneofl base_attrs in
  let rec go n =
    if n = 0 then scalar
    else
      frequency
        [
          (4, scalar);
          (1, map Attr.array (list_size (int_range 0 3) (go (n - 1))));
          ( 1,
            map
              (fun ps -> Attr.dyn_attr ~dialect:"d" ~name:"a" ps)
              (list_size (int_range 0 2) (go (n - 1))) );
        ]
  in
  go 2

let int_kind w s = C.Int_param { C.ik_width = w; ik_signedness = s }

let leaf_constraint_gen =
  oneof
    [
      oneofl
        [
          C.Any;
          C.Any_type;
          C.Any_attr;
          C.String_param;
          C.Symbol_param;
          C.Bool_param;
          C.Location_param;
          C.Type_id_param;
          C.Array_any;
          int_kind 32 Attr.Signless;
          int_kind 8 Attr.Unsigned;
          C.Float_param None;
          C.Float_param (Some Attr.F32);
          C.Enum_param { dialect = "d"; enum = "e" };
          C.Native_param { name = "P"; class_name = "char*" };
          C.Base_type { dialect = "cmath"; name = "complex"; params = None };
          C.Base_type
            {
              dialect = "cmath";
              name = "complex";
              params = Some [ C.Eq (Attr.typ Attr.f32) ];
            };
          C.Base_attr { dialect = "d"; name = "a"; params = None };
          C.Base_attr { dialect = "d"; name = "a"; params = Some [ C.Any ] };
        ];
      map (fun a -> C.Eq a) attr_gen;
    ]

let constraint_gen =
  let rec go n =
    if n = 0 then leaf_constraint_gen
    else
      let sub = go (n - 1) in
      frequency
        [
          (3, leaf_constraint_gen);
          (2, map (fun cs -> C.Any_of cs) (list_size (int_range 1 3) sub));
          (2, map (fun cs -> C.And cs) (list_size (int_range 1 3) sub));
          (1, map (fun c -> C.Not c) sub);
          (1, map (fun c -> C.Array_of c) sub);
          (1, map (fun cs -> C.Array_exact cs) (list_size (int_range 0 2) sub));
          ( 2,
            map2
              (fun name c -> C.Var { C.v_name = name; v_constraint = c })
              (oneofl [ "T"; "U" ])
              sub );
          ( 1,
            map
              (fun c ->
                C.Native { name = "nat"; base = c; snippets = [ "$_self" ] })
              sub );
        ]
  in
  go 3

(* ---------------- the differential oracle ---------------- *)

let pp_result ppf = function
  | Ok env ->
      Fmt.pf ppf "Ok {%a}"
        Fmt.(
          list ~sep:(any "; ") (fun ppf (k, v) ->
              Fmt.pf ppf "%s=%a" k Attr.pp v))
        (C.Env.bindings env)
  | Error msg -> Fmt.pf ppf "Error %S" msg

let same_result r1 r2 =
  match (r1, r2) with
  | Ok e1, Ok e2 -> C.Env.equal Attr.equal e1 e2
  | Error m1, Error m2 -> String.equal m1 m2
  | _ -> false

let agree what c attrs =
  let check = C.compile ~native c in
  let run step =
    List.fold_left
      (fun acc a ->
        match acc with Error _ as e -> e | Ok env -> step env a)
      (Ok C.empty_env) attrs
  in
  let interpreted = run (fun env a -> C.verify ~native ~env c a) in
  let compiled = run (fun env a -> check env a) in
  if same_result interpreted compiled then true
  else
    QCheck2.Test.fail_reportf
      "%s: compiled and interpreted disagree on@ %a@ against [%a]:@ \
       interpreted %a@ compiled %a"
      what C.pp c
      Fmt.(list ~sep:(any ", ") Attr.pp)
      attrs pp_result interpreted pp_result compiled

let single_check =
  QCheck2.Test.make ~name:"compiled = interpreted (single check)" ~count:700
    (pair constraint_gen attr_gen)
    (fun (c, a) -> agree "single" c [ a ])

(* Threading one environment through several checks of the same constraint
   is how operand slots share [ConstraintVars] variables: the first check
   binds, later checks must agree — on both evaluators identically. *)
let threaded_checks =
  QCheck2.Test.make ~name:"compiled = interpreted (threaded env)" ~count:400
    (pair constraint_gen (list_size (int_range 1 4) attr_gen))
    (fun (c, attrs) -> agree "threaded" c attrs)

(* ---------------- directed corners ---------------- *)

let var t = C.Var { C.v_name = "T"; v_constraint = t }

let directed () =
  (* Var sharing across checks: second binding must match the first. *)
  Alcotest.(check bool)
    "var sharing conflict agrees" true
    (agree "var-conflict" (var C.Any_type)
       [ Attr.typ Attr.f32; Attr.typ Attr.f64 ]);
  Alcotest.(check bool)
    "var sharing match agrees" true
    (agree "var-match" (var C.Any_type) [ Attr.typ Attr.f32; Attr.typ Attr.f32 ]);
  (* A failed AnyOf branch must not leak the bindings it made. *)
  let leaky_branch =
    C.Any_of [ C.And [ var C.Any_type; C.String_param ]; C.Any_type ]
  in
  Alcotest.(check bool)
    "failed AnyOf branch agrees" true
    (agree "anyof-leak" leaky_branch [ Attr.typ Attr.f32 ]);
  (match C.compile ~native leaky_branch C.empty_env (Attr.typ Attr.f32) with
  | Ok env ->
      Alcotest.(check bool)
        "compiled failed branch leaks no binding" true (C.Env.is_empty env)
  | Error m -> Alcotest.failf "expected success, got %s" m);
  (* Nested AnyOf, successful inner alternative. *)
  let nested =
    C.Any_of
      [
        C.Any_of [ C.String_param; C.Bool_param ];
        C.Any_of [ var (C.Eq (Attr.int 3L)); C.Any ];
      ]
  in
  Alcotest.(check bool)
    "nested AnyOf agrees" true
    (agree "anyof-nested" nested [ Attr.int 3L ]);
  (* Negation discards bindings and flips the verdict — identically. *)
  let neg = C.Not (var C.Any_type) in
  Alcotest.(check bool)
    "Not rejects satisfying value" true
    (agree "not-sat" neg [ Attr.typ Attr.f32 ]);
  Alcotest.(check bool)
    "Not accepts violating value" true
    (agree "not-unsat" neg [ Attr.string "s" ]);
  (match C.compile ~native neg C.empty_env (Attr.string "s") with
  | Ok env ->
      Alcotest.(check bool)
        "Not leaks no binding" true (C.Env.is_empty env)
  | Error m -> Alcotest.failf "expected success, got %s" m)

let compile_ty_agrees () =
  let c =
    C.Any_of
      [
        C.Eq (Attr.typ Attr.f64);
        C.Base_type { dialect = "cmath"; name = "complex"; params = None };
      ]
  in
  let tys =
    [
      Attr.f64;
      Attr.f32;
      Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ];
    ]
  in
  List.iter
    (fun ty ->
      let interpreted = C.verify_ty ~native ~env:C.empty_env c ty in
      let compiled = C.compile_ty ~native c C.empty_env ty in
      if not (same_result interpreted compiled) then
        Alcotest.failf "compile_ty disagrees on %a" Attr.pp_ty ty)
    tys

let suite =
  [
    QCheck_alcotest.to_alcotest single_check;
    QCheck_alcotest.to_alcotest threaded_checks;
    Util.tc "directed corners" directed;
    Util.tc "compile_ty" compile_ty_agrees;
  ]
