(** Tests for the rewrite engine: rewriter primitives, DCE, declarative
    patterns, and the greedy driver. *)

open Irdl_ir
open Irdl_rewrite
open Util

(** Build the conorm function (Listing 1a) and return (scope, ctx). *)
let conorm_scope () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %np = cmath.norm %p : f32
  %nq = cmath.norm %q : f32
  %m = "arith.mulf"(%np, %nq) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}
  in
  (ctx, func)

let count_ops scope name =
  let n = ref 0 in
  Graph.Op.walk scope ~f:(fun o -> if Graph.Op.name o = name then incr n);
  !n

let norm_of_mul_pattern =
  Pattern.dag ~name:"norm-mul"
    ~root:
      (Pattern.m_op "arith.mulf"
         [
           Pattern.m_op "cmath.norm" [ Pattern.m_val "p" ];
           Pattern.m_op "cmath.norm" [ Pattern.m_val "q" ];
         ])
    ~replacement:
      (Pattern.b_op "cmath.norm"
         [ Pattern.b_op "cmath.mul"
             [ Pattern.b_cap "p"; Pattern.b_cap "q" ]
             (Pattern.Ty_of_capture "p") ]
         (Pattern.Ty_const Attr.f32))
    ()

let replace_op_basics () =
  let ctx, func = conorm_scope () in
  let rw = Rewriter.create ctx func in
  (* find the mulf and replace it with a fresh op *)
  let mulf = ref None in
  Graph.Op.walk func ~f:(fun o ->
      if Graph.Op.name o = "arith.mulf" then mulf := Some o);
  let mulf = Option.get !mulf in
  let fresh =
    Rewriter.replace_op_with_new rw mulf ~operands:(Graph.Op.operands mulf)
      ~result_tys:[ Attr.f32 ] "arith.addf"
  in
  Alcotest.(check int) "mulf gone" 0 (count_ops func "arith.mulf");
  Alcotest.(check int) "addf present" 1 (count_ops func "arith.addf");
  Alcotest.(check bool) "uses rewired" true
    (Graph.has_uses_in func (Graph.Op.result fresh 0));
  Alcotest.(check bool) "changed" true rw.Rewriter.changed

let erase_op_guard () =
  let ctx, func = conorm_scope () in
  let rw = Rewriter.create ctx func in
  let norm = ref None in
  Graph.Op.walk func ~f:(fun o ->
      if Graph.Op.name o = "cmath.norm" && !norm = None then norm := Some o);
  Alcotest.(check bool) "refuses live op" true
    (try
       Rewriter.erase_op rw (Option.get !norm);
       false
     with Invalid_argument _ -> true)

let dce_removes_dead_chains () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>):
  %dead1 = cmath.norm %p : f32
  %dead2 = "arith.mulf"(%dead1, %dead1) : (f32, f32) -> f32
  %live = cmath.norm %p : f32
  "func.return"(%live) : (f32) -> ()
}) : () -> ()
|}
  in
  let rw = Rewriter.create ctx func in
  let erased = Rewriter.dce rw in
  Alcotest.(check int) "erased both" 2 erased;
  Alcotest.(check int) "live norm kept" 1 (count_ops func "cmath.norm");
  Alcotest.(check int) "return kept" 1 (count_ops func "func.return")

let dce_keeps_terminators_and_regions () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%lb: i32):
  "cmath.range_loop"(%lb, %lb, %lb) ({
  ^body(%iv: i32):
    "cmath.range_loop_terminator"() : () -> ()
  }) : (i32, i32, i32) -> ()
}) : () -> ()
|}
  in
  let rw = Rewriter.create ctx func in
  let erased = Rewriter.dce rw in
  Alcotest.(check int) "nothing erased" 0 erased

let dag_pattern_matches () =
  let ctx, func = conorm_scope () in
  let stats = Driver.apply ctx [ norm_of_mul_pattern ] func in
  Alcotest.(check int) "applied once" 1 (Driver.applications stats);
  Alcotest.(check bool) "converged" true (Driver.converged stats);
  Alcotest.(check int) "mul created" 1 (count_ops func "cmath.mul");
  Alcotest.(check int) "single norm left" 1 (count_ops func "cmath.norm");
  Alcotest.(check int) "mulf gone" 0 (count_ops func "arith.mulf");
  verify_ok ctx func

let dag_pattern_no_match () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%a: f32, %b: f32):
  %m = "arith.mulf"(%a, %b) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}
  in
  let stats = Driver.apply ctx [ norm_of_mul_pattern ] func in
  Alcotest.(check int) "no application" 0 (Driver.applications stats);
  Alcotest.(check int) "one iteration" 1 (Driver.iterations stats)

let nonlinear_capture () =
  (* x * x with a repeated capture must only match equal operands. *)
  let square =
    Pattern.dag ~name:"square"
      ~root:(Pattern.m_op "arith.mulf" [ Pattern.m_val "x"; Pattern.m_val "x" ])
      ~replacement:
        (Pattern.b_op "test.square" [ Pattern.b_cap "x" ]
           (Pattern.Ty_of_capture "x"))
      ()
  in
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%a: f32, %b: f32):
  %m1 = "arith.mulf"(%a, %a) : (f32, f32) -> f32
  %m2 = "arith.mulf"(%a, %b) : (f32, f32) -> f32
  "func.return"(%m1, %m2) : (f32, f32) -> ()
}) : () -> ()
|}
  in
  let stats = Driver.apply ctx [ square ] func in
  Alcotest.(check int) "only x*x rewritten" 1 (Driver.applications stats);
  Alcotest.(check int) "one mulf left" 1 (count_ops func "arith.mulf")

let benefit_ordering () =
  let log = ref [] in
  let mk name benefit =
    Pattern.make ~benefit ~name (fun _rw op ->
        if Graph.Op.name op = "t.target" then log := name :: !log;
        false)
  in
  let ctx = Context.create () in
  let blk = Graph.Block.create () in
  Graph.Block.append blk (Graph.Op.create "t.target");
  let scope =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.f"
  in
  let _ = Driver.apply ctx [ mk "low" 1; mk "high" 10 ] scope in
  Alcotest.(check (list string)) "high first" [ "high"; "low" ] (List.rev !log)

let driver_iteration_cap () =
  (* A pattern that always reports progress must hit the cap, not loop. *)
  let churn =
    Pattern.make ~name:"churn" (fun rw op ->
        if Graph.Op.name op = "t.x" then begin
          let fresh = Rewriter.insert_before rw ~anchor:op "t.x" in
          ignore fresh;
          Graph.detach op;
          Rewriter.mark_changed rw;
          true
        end
        else false)
  in
  let ctx = Context.create () in
  let blk = Graph.Block.create () in
  Graph.Block.append blk (Graph.Op.create "t.x");
  let scope =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.f"
  in
  let stats = Driver.apply ~max_iterations:4 ctx [ churn ] scope in
  Alcotest.(check bool) "did not converge" false (Driver.converged stats);
  Alcotest.(check int) "capped" 4 (Driver.iterations stats)

let cascading_patterns () =
  (* a -> b, then b -> c: the driver reaches the fixpoint c. *)
  let rename from_ to_ =
    Pattern.make ~name:(from_ ^ "->" ^ to_) (fun rw op ->
        if Graph.Op.name op = from_ then begin
          ignore
            (Rewriter.replace_op_with_new rw op
               ~operands:(Graph.Op.operands op)
               ~result_tys:(Graph.Op.result_tys op) to_);
          true
        end
        else false)
  in
  let ctx = Context.create () in
  let blk = Graph.Block.create () in
  let a = Graph.Op.create ~result_tys:[ Attr.i32 ] "t.a" in
  Graph.Block.append blk a;
  let use = Graph.Op.create ~operands:[ Graph.Op.result a 0 ] "t.use" in
  Graph.Block.append blk use;
  let scope =
    Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.f"
  in
  let stats = Driver.apply ctx [ rename "t.a" "t.b"; rename "t.b" "t.c" ] scope in
  Alcotest.(check bool) "converged" true (Driver.converged stats);
  Alcotest.(check int) "c present" 1 (count_ops scope "t.c");
  Alcotest.(check int) "a gone" 0 (count_ops scope "t.a");
  Alcotest.(check int) "use kept" 1 (count_ops scope "t.use")

let suite =
  [
    tc "replace_op rewires uses" replace_op_basics;
    tc "erase_op refuses live results" erase_op_guard;
    tc "dce removes dead chains" dce_removes_dead_chains;
    tc "dce keeps terminators and region ops" dce_keeps_terminators_and_regions;
    tc "Listing 1 rewrite via declarative pattern" dag_pattern_matches;
    tc "patterns that do not match leave IR intact" dag_pattern_no_match;
    tc "non-linear captures require equal values" nonlinear_capture;
    tc "higher-benefit patterns run first" benefit_ordering;
    tc "driver iteration cap" driver_iteration_cap;
    tc "cascading patterns reach fixpoint" cascading_patterns;
  ]
