(** Tests for the pass infrastructure: unified statistics, the textual
    pipeline parser, the builtin passes, and the instrumented pass manager
    (timing, IR snapshots, verify-after-each with failure attribution). *)

open Irdl_support
open Irdl_ir
open Irdl_pass
open Util

let count scope name =
  let n = ref 0 in
  Graph.Op.walk scope ~f:(fun o -> if Graph.Op.name o = name then incr n);
  !n

(* A module with a CSE-able duplicate and (after CSE) a dead op. *)
let dup_module ctx =
  parse_op ctx
    {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>):
  %n1 = cmath.norm %p : f32
  %n2 = cmath.norm %p : f32
  %m = "arith.mulf"(%n1, %n2) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}

(* ------------------------------------------------------------------ *)
(* Unified statistics                                                  *)
(* ------------------------------------------------------------------ *)

let stats_basics () =
  let s = Stats.v [ ("a", 2); ("b", 0) ] in
  Alcotest.(check int) "get present" 2 (Stats.get s "a");
  Alcotest.(check int) "get absent" 0 (Stats.get s "c");
  Alcotest.(check bool) "flag zero" false (Stats.get_flag s "b");
  Alcotest.(check bool) "flag set" true (Stats.get_flag s "a");
  Alcotest.(check bool) "duplicate names rejected" true
    (try
       ignore (Stats.v [ ("x", 1); ("x", 2) ]);
       false
     with Invalid_argument _ -> true)

let stats_add_order () =
  let a = Stats.v [ ("x", 1); ("y", 2) ] in
  let b = Stats.v [ ("y", 3); ("z", 4) ] in
  Alcotest.(check (list (pair string int)))
    "pointwise sum, first-appearance order"
    [ ("x", 1); ("y", 5); ("z", 4) ]
    (Stats.counters (Stats.add a b))

let stats_render () =
  let s = Stats.v [ ("examined", 4); ("eliminated", 1) ] in
  Alcotest.(check string)
    "pp" "examined=4, eliminated=1"
    (Fmt.str "%a" Stats.pp s);
  Alcotest.(check string)
    "json" {|{ "examined": 4, "eliminated": 1 }|}
    (Stats.to_json s);
  Alcotest.(check string) "empty pp" "(no statistics)"
    (Fmt.str "%a" Stats.pp Stats.empty);
  Alcotest.(check string) "empty json" "{}" (Stats.to_json Stats.empty)

(* ------------------------------------------------------------------ *)
(* Pipeline parser                                                     *)
(* ------------------------------------------------------------------ *)

let available = Passes.builtin ()

let parse_names src =
  match Pipeline.parse ~available src with
  | Ok passes -> List.map Pass.name passes
  | Error d -> Alcotest.failf "unexpected parse error: %s" (Diag.to_string d)

let parse_err src =
  match Pipeline.parse ~available src with
  | Ok _ -> Alcotest.failf "pipeline %S: expected an error" src
  | Error d -> d

let pipeline_ok () =
  Alcotest.(check (list string))
    "order preserved"
    [ "canonicalize"; "cse"; "dce" ]
    (parse_names "canonicalize,cse,dce");
  Alcotest.(check (list string))
    "whitespace ignored" [ "cse"; "dce" ]
    (parse_names "  cse ,\tdce ");
  Alcotest.(check (list string))
    "single pass" [ "verify-dominance" ]
    (parse_names "verify-dominance")

let located what d line col =
  Alcotest.(check string)
    (what ^ ": file")
    Pipeline.default_file d.Diag.loc.Loc.start_pos.Loc.file;
  Alcotest.(check int) (what ^ ": line") line d.Diag.loc.Loc.start_pos.Loc.line;
  Alcotest.(check int) (what ^ ": col") col d.Diag.loc.Loc.start_pos.Loc.col

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_msg what d needle =
  if not (contains (Diag.to_string d) needle) then
    Alcotest.failf "%s: diagnostic %S does not mention %S" what
      (Diag.to_string d) needle

let pipeline_unknown () =
  let d = parse_err "cse,nope" in
  check_msg "unknown" d "unknown pass 'nope'";
  check_msg "unknown lists alternatives" d "available passes";
  located "unknown" d 1 5

let pipeline_empty_entry () =
  let d = parse_err "cse,,dce" in
  check_msg "empty entry" d "empty pass name";
  located "empty entry" d 1 5

let pipeline_trailing_comma () =
  let d = parse_err "cse,dce," in
  check_msg "trailing comma" d "trailing comma";
  located "trailing comma" d 1 8

let pipeline_empty () =
  let d = parse_err "" in
  check_msg "empty pipeline" d "empty pass pipeline";
  let d = parse_err "   " in
  check_msg "blank pipeline" d "empty pass pipeline"

let pipeline_duplicate () =
  let d = parse_err "cse,dce,cse" in
  check_msg "duplicate" d "duplicate pass 'cse'";
  check_msg "duplicate points back" d "first occurrence here";
  located "duplicate" d 1 9

(* Parsing never raises, whatever the input. *)
let pipeline_no_exceptions () =
  List.iter
    (fun src ->
      match Pipeline.parse ~available src with Ok _ | Error _ -> ())
    [ ","; ",,"; " , "; "\n"; "cse dce"; "cse;dce"; String.make 4096 ',' ]

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

let manager_runs_pipeline () =
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let passes =
    match Pipeline.parse ~available "cse,dce" with
    | Ok ps -> ps
    | Error d -> Alcotest.failf "parse: %s" (Diag.to_string d)
  in
  let mgr = Pass_manager.create passes in
  let report = check_ok "run" (Pass_manager.run mgr ctx [ func ]) in
  Alcotest.(check (list string))
    "report order" [ "cse"; "dce" ]
    (List.map (fun r -> r.Pass_manager.pr_pass) report.Pass_manager.rp_passes);
  let cse_report = List.hd report.Pass_manager.rp_passes in
  Alcotest.(check int) "cse eliminated" 1
    (Stats.get cse_report.Pass_manager.pr_stats "eliminated");
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("non-negative time for " ^ r.Pass_manager.pr_pass)
        true
        (r.Pass_manager.pr_time_s >= 0.))
    report.Pass_manager.rp_passes;
  Alcotest.(check bool) "total covers passes" true
    (report.Pass_manager.rp_total_s >= 0.);
  Alcotest.(check int) "one norm left" 1 (count func "cmath.norm");
  verify_ok ctx func

let manager_aggregates_over_module () =
  (* Two top-level ops: statistics sum across them. *)
  let ctx = cmath_ctx () in
  let f1 = dup_module ctx and f2 = dup_module ctx in
  let mgr = Pass_manager.create [ Passes.cse ] in
  let report = check_ok "run" (Pass_manager.run mgr ctx [ f1; f2 ]) in
  let r = List.hd report.Pass_manager.rp_passes in
  Alcotest.(check int) "eliminated across both ops" 2
    (Stats.get r.Pass_manager.pr_stats "eliminated")

(* A pass that deliberately breaks the IR: it appends a cmath.norm whose
   operand is f32, violating the registered operand constraint. *)
let breaker ctx' =
  ignore ctx';
  Pass.make ~name:"breaker" ~description:"injects an invalid op"
    (fun _ctx op ->
      let blk =
        match op.Graph.regions with
        | r :: _ -> List.hd (Graph.Region.blocks r)
        | [] -> Alcotest.fail "breaker needs a region"
      in
      let f32_val =
        match Graph.Block.args blk with
        | _complex :: _ ->
            (* build a fresh f32 producer, then misuse it *)
            let producer =
              Graph.Op.create ~result_tys:[ Attr.f32 ] "t.producer"
            in
            Graph.Block.append blk producer;
            Graph.Op.result producer 0
        | [] -> Alcotest.fail "breaker needs a block arg"
      in
      Graph.Block.append blk
        (Graph.Op.create ~operands:[ f32_val ] ~result_tys:[ Attr.f32 ]
           "cmath.norm");
      Ok (Stats.v [ ("broken", 1) ]))

let verify_each_attributes_failure () =
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let mgr =
    Pass_manager.create ~verify_each:true [ Passes.cse; breaker ctx; Passes.dce ]
  in
  match Pass_manager.run mgr ctx [ func ] with
  | Ok _ -> Alcotest.fail "expected a verification failure"
  | Error d ->
      check_msg "attribution" d "IR verification failed after pass 'breaker'";
      check_msg "underlying failure kept" d "cmath.norm"

let verify_each_off_misses_breakage () =
  (* Without verify-each the manager itself reports success; the caller's
     final re-verification is what catches it (irdl-opt does this). *)
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let mgr = Pass_manager.create [ breaker ctx ] in
  let _ = check_ok "run" (Pass_manager.run mgr ctx [ func ]) in
  match Verifier.verify_ops ctx [ func ] with
  | Ok () -> Alcotest.fail "expected the final verify to fail"
  | Error _ -> ()

let failing_pass_attributed () =
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let failing =
    Pass.make ~name:"exploder" (fun _ _ -> Error (Diag.error "boom"))
  in
  let mgr = Pass_manager.create [ failing ] in
  match Pass_manager.run mgr ctx [ func ] with
  | Ok _ -> Alcotest.fail "expected the pass failure to propagate"
  | Error d ->
      check_msg "original message kept" d "boom";
      check_msg "pass named in note" d "while running pass 'exploder'"

let snapshots_hit_dump_hook () =
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let headers = ref [] in
  let dump _ctx header _ops = headers := header :: !headers in
  let mgr =
    Pass_manager.create ~print_ir_before:[ "dce" ] ~print_ir_after:[ "cse" ]
      ~dump
      [ Passes.cse; Passes.dce ]
  in
  let _ = check_ok "run" (Pass_manager.run mgr ctx [ func ]) in
  Alcotest.(check (list string))
    "dump headers"
    [ "IR dump after cse"; "IR dump before dce" ]
    (List.rev !headers);
  (* _all variants dump around every pass *)
  let func2 = dup_module ctx in
  headers := [];
  let mgr_all =
    Pass_manager.create ~print_ir_before_all:true ~print_ir_after_all:true
      ~dump
      [ Passes.cse; Passes.dce ]
  in
  let _ = check_ok "run" (Pass_manager.run mgr_all ctx [ func2 ]) in
  Alcotest.(check int) "two dumps per pass" 4 (List.length !headers)

let report_renderings () =
  let ctx = cmath_ctx () in
  let func = dup_module ctx in
  let mgr = Pass_manager.create [ Passes.cse; Passes.dce ] in
  let report = check_ok "run" (Pass_manager.run mgr ctx [ func ]) in
  let text = Fmt.str "%a" Pass_manager.pp_report report in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "text report %S misses %S" text needle)
    [ "pass execution timing report"; "total wall-clock"; "cse"; "dce";
      "eliminated=" ];
  let json = Pass_manager.report_to_json report in
  List.iter
    (fun needle ->
      if not (contains json needle) then
        Alcotest.failf "json report %S misses %S" json needle)
    [ {|"total_s"|}; {|"pass": "cse"|}; {|"pass": "dce"|}; {|"time_s"|};
      {|"stats": { "examined"|} ]

(* The canonicalize pass drives the same greedy engine as Driver.apply. *)
let canonicalize_pass_applies_patterns () =
  let ctx = cmath_ctx () in
  let func =
    parse_op ctx
      {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %np = cmath.norm %p : f32
  %nq = cmath.norm %q : f32
  %m = "arith.mulf"(%np, %nq) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) : () -> ()
|}
  in
  let pattern =
    Irdl_rewrite.Pattern.dag ~name:"norm-mul"
      ~root:
        (Irdl_rewrite.Pattern.m_op "arith.mulf"
           [
             Irdl_rewrite.Pattern.m_op "cmath.norm"
               [ Irdl_rewrite.Pattern.m_val "p" ];
             Irdl_rewrite.Pattern.m_op "cmath.norm"
               [ Irdl_rewrite.Pattern.m_val "q" ];
           ])
      ~replacement:
        (Irdl_rewrite.Pattern.b_op "cmath.norm"
           [
             Irdl_rewrite.Pattern.b_op "cmath.mul"
               [ Irdl_rewrite.Pattern.b_cap "p"; Irdl_rewrite.Pattern.b_cap "q" ]
               (Irdl_rewrite.Pattern.Ty_of_capture "p");
           ]
           (Irdl_rewrite.Pattern.Ty_const Attr.f32))
      ()
  in
  let mgr =
    Pass_manager.create ~verify_each:true
      [ Passes.canonicalize ~patterns:[ pattern ] () ]
  in
  let report = check_ok "run" (Pass_manager.run mgr ctx [ func ]) in
  let r = List.hd report.Pass_manager.rp_passes in
  Alcotest.(check int) "one application" 1
    (Stats.get r.Pass_manager.pr_stats "applications");
  Alcotest.(check int) "mul created" 1 (count func "cmath.mul");
  verify_ok ctx func

let dominance_pass_checks () =
  let ctx = Context.create () in
  let bad =
    parse_op ctx
      {|
"t.wrap"() ({
^bb0:
  "t.use"(%later) : (i32) -> ()
  %later = "t.def"() : () -> i32
}) : () -> ()
|}
  in
  let mgr = Pass_manager.create [ Passes.verify_dominance ] in
  match Pass_manager.run mgr ctx [ bad ] with
  | Ok _ -> Alcotest.fail "expected a dominance failure"
  | Error d ->
      check_msg "dominance diag" d "not dominated";
      check_msg "pass named" d "while running pass 'verify-dominance'"

let suite =
  [
    tc "stats basics" stats_basics;
    tc "stats add preserves order" stats_add_order;
    tc "stats pp and json" stats_render;
    tc "pipeline parses in order" pipeline_ok;
    tc "unknown pass is a located diagnostic" pipeline_unknown;
    tc "empty entry is a located diagnostic" pipeline_empty_entry;
    tc "trailing comma is a located diagnostic" pipeline_trailing_comma;
    tc "empty pipeline is a diagnostic" pipeline_empty;
    tc "duplicate entry is a located diagnostic" pipeline_duplicate;
    tc "pipeline parsing never raises" pipeline_no_exceptions;
    tc "manager runs a pipeline with timing" manager_runs_pipeline;
    tc "statistics aggregate across the module" manager_aggregates_over_module;
    tc "verify-each attributes breakage to the pass" verify_each_attributes_failure;
    tc "without verify-each the final verify catches it"
      verify_each_off_misses_breakage;
    tc "failing pass keeps its diagnostic, named in a note"
      failing_pass_attributed;
    tc "IR snapshots go through the dump hook" snapshots_hit_dump_hook;
    tc "timing report renders as text and JSON" report_renderings;
    tc "canonicalize pass applies patterns" canonicalize_pass_applies_patterns;
    tc "verify-dominance pass reports failures" dominance_pass_checks;
  ]
