(** Property tests over the IR itself: randomly generated programs survive a
    print/parse round trip structurally intact, and attributes round-trip
    through their textual form. *)

open Irdl_ir
open QCheck2.Gen

(* ---------------- random attribute round trip ---------------- *)

let float_gen =
  oneof
    [
      QCheck2.Gen.float;
      oneofl [ 0.0; -0.0; 1.5; -3.25; 1e-300; 1e300; 0.1; Float.epsilon;
               Float.max_float; Float.min_float ];
    ]

let attr_gen =
  let scalar =
    oneof
      [
        map (fun i -> Attr.int (Int64.of_int i)) int;
        map (fun f -> Attr.float f) float_gen;
        map (fun f -> Attr.float ~ty:Attr.f32 f) float_gen;
        map Attr.string (string_size ~gen:printable (int_range 0 12));
        map Attr.bool bool;
        return Attr.unit;
        map Attr.symbol
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
        return (Attr.typ Attr.f32);
        return (Attr.typ (Attr.tuple [ Attr.i32; Attr.index ]));
        return (Attr.enum ~dialect:"d" ~enum:"e" "Case");
        return (Attr.type_id "X");
        return (Attr.opaque ~tag:"P" "payload");
        return (Attr.location ~file:"f.mlir" ~line:3 ~col:7);
      ]
  in
  (* {!Attr.dict} rejects duplicate keys, so generated entries are
     deduplicated before construction. *)
  let uniq_keys kvs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.add seen k ();
          true))
      kvs
  in
  let rec go n =
    if n = 0 then scalar
    else
      frequency
        [
          (4, scalar);
          (1, map Attr.array (list_size (int_range 0 3) (go (n - 1))));
          ( 1,
            map
              (fun kvs -> Attr.dict (uniq_keys kvs))
              (list_size (int_range 0 3)
                 (pair
                    (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))
                    (go (n - 1)))) );
          ( 1,
            map
              (fun a -> Attr.dyn_attr ~dialect:"d" ~name:"a" [ a ])
              (go (n - 1)) );
        ]
  in
  go 2

let attr_roundtrip =
  QCheck2.Test.make ~name:"attribute print/parse roundtrip" ~count:500
    ~print:Attr.to_string attr_gen
    (fun a ->
      match (a : Attr.t) with
      | Attr.Float_attr { value; _ } when not (Float.is_finite value) ->
          (* NaN/infinity do not round-trip through the decimal syntax;
             documented limitation. *)
          QCheck2.assume_fail ()
      | _ -> (
          let ctx = Context.create () in
          match Parser.parse_attr_string ctx (Attr.to_string a) with
          | Ok a' -> Attr.equal a a'
          | Error _ -> false))

(* ---------------- random program round trip ---------------- *)

let ty_pool = [| Attr.i1; Attr.i32; Attr.i64; Attr.f32; Attr.f64; Attr.index |]

(** A random straight-line program: each op consumes a random subset of
    previously defined values and produces 0-2 results. *)
let program_gen =
  let* n_ops = int_range 1 12 in
  let* seeds = list_repeat n_ops (pair (int_bound 1000) (int_bound 1000)) in
  return
    (let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.f32 ] () in
     let available = ref (Graph.Block.args blk) in
     List.iteri
       (fun i (s1, s2) ->
         let pick k =
           let avail = Array.of_list !available in
           List.init (k mod 3) (fun j ->
               avail.((s1 + j) mod Array.length avail))
         in
         let operands = pick s2 in
         let result_tys =
           List.init (s2 mod 3) (fun j ->
               ty_pool.((s1 + j) mod Array.length ty_pool))
         in
         let attrs =
           if s1 mod 4 = 0 then [ ("k", Attr.int (Int64.of_int s2)) ] else []
         in
         let op =
           Graph.Op.create ~operands ~result_tys ~attrs
             (Printf.sprintf "t.op%d" (i mod 5))
         in
         Graph.Block.append blk op;
         available := !available @ Graph.Op.results op)
       seeds;
     Graph.Op.create
       ~regions:[ Graph.Region.create ~blocks:[ blk ] () ]
       "t.func")

(* Structural equality of two op trees up to value identity. *)
let rec same_structure (a : Graph.op) (b : Graph.op) =
  Graph.Op.name a = Graph.Op.name b
  && Graph.Op.num_operands a = Graph.Op.num_operands b
  && List.for_all2
       (fun (x : Graph.value) (y : Graph.value) ->
         Attr.equal_ty (Graph.Value.ty x) (Graph.Value.ty y))
       (Graph.Op.operands a) (Graph.Op.operands b)
  && Graph.Op.num_results a = Graph.Op.num_results b
  && List.length a.Graph.attrs = List.length b.Graph.attrs
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && Attr.equal v1 v2)
       a.Graph.attrs b.Graph.attrs
  && List.length a.Graph.regions = List.length b.Graph.regions
  && List.for_all2
       (fun (ra : Graph.region) (rb : Graph.region) ->
         Graph.Region.num_blocks ra = Graph.Region.num_blocks rb
         && List.for_all2
              (fun (ba : Graph.block) (bb : Graph.block) ->
                Graph.Block.num_args ba = Graph.Block.num_args bb
                && Graph.Block.num_ops ba = Graph.Block.num_ops bb
                && List.for_all2 same_structure (Graph.Block.ops ba)
                     (Graph.Block.ops bb))
              (Graph.Region.blocks ra) (Graph.Region.blocks rb))
       a.Graph.regions b.Graph.regions

let program_roundtrip =
  QCheck2.Test.make ~name:"random program print/parse roundtrip" ~count:200
    program_gen (fun prog ->
      let ctx = Context.create () in
      let printed = Printer.op_to_string ctx prog in
      match Parser.parse_op_string ctx printed with
      | Ok reparsed ->
          same_structure prog reparsed
          && Printer.op_to_string ctx reparsed = printed
      | Error _ -> false)

(* Use-def consistency: in a round-tripped program, operand identity is
   preserved (two uses of one value stay one value). *)
let use_def_consistency =
  QCheck2.Test.make ~name:"roundtrip preserves value sharing" ~count:200
    program_gen (fun prog ->
      let ctx = Context.create () in
      let count_distinct op =
        let ids = Hashtbl.create 16 in
        Graph.Op.walk op ~f:(fun o ->
            Graph.Op.iter_operands o ~f:(fun (v : Graph.value) ->
                Hashtbl.replace ids (Graph.Value.id v) ()));
        Hashtbl.length ids
      in
      match Parser.parse_op_string ctx (Printer.op_to_string ctx prog) with
      | Ok reparsed -> count_distinct prog = count_distinct reparsed
      | Error _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest attr_roundtrip;
    QCheck_alcotest.to_alcotest program_roundtrip;
    QCheck_alcotest.to_alcotest use_def_consistency;
  ]
