The fail-soft frontend: one run reports every error, with caret snippets,
split-input-file chunk isolation and expected-diagnostic verification.

A dialect file with several distinct errors — all of them are reported in
a single run, each with a caret snippet, and the exit code is the
parse-class code 1:

  $ cat > broken.irdl <<'EOF'
  > Dialect broken {
  >   Type t1 { Bogus }
  >   Operation ok { Operands() Results() }
  >   Operation bad { Operands(x UnknownThing) Results() }
  >   Type t2 { Parameters (p: NoSuchConstraint) }
  > }
  > EOF
  $ irdl-opt -d broken.irdl
  broken.irdl:2:13-18: error: at 'Bogus': expected Parameters, Summary, CppConstraint or '}'
    2 |   Type t1 { Bogus }
      |             ^~~~~
  broken.irdl:4:30-42: error: at 'UnknownThing': expected ':'
    4 |   Operation bad { Operands(x UnknownThing) Results() }
      |                              ^~~~~~~~~~~~
  broken.irdl:5:28-45: error: unknown name 'NoSuchConstraint' in dialect broken
    5 |   Type t2 { Parameters (p: NoSuchConstraint) }
      |                            ^~~~~~~~~~~~~~~~~
  [1]

--max-errors caps the flood; the rest is counted, not printed:

  $ irdl-opt -d broken.irdl --max-errors 1
  broken.irdl:2:13-18: error: at 'Bogus': expected Parameters, Summary, CppConstraint or '}'
    2 |   Type t1 { Bogus }
      |             ^~~~~
  [1]

--diag-json mirrors the run to a machine-readable sink:

  $ irdl-opt -d broken.irdl --diag-json diags.json
  broken.irdl:2:13-18: error: at 'Bogus': expected Parameters, Summary, CppConstraint or '}'
    2 |   Type t1 { Bogus }
      |             ^~~~~
  broken.irdl:4:30-42: error: at 'UnknownThing': expected ':'
    4 |   Operation bad { Operands(x UnknownThing) Results() }
      |                              ^~~~~~~~~~~~
  broken.irdl:5:28-45: error: unknown name 'NoSuchConstraint' in dialect broken
    5 |   Type t2 { Parameters (p: NoSuchConstraint) }
      |                            ^~~~~~~~~~~~~~~~~
  [1]
  $ grep -c '"severity": "error"' diags.json
  3

The same annotations, checked instead of printed: expected-error lines in
the dialect file make the run pass (exit 0):

  $ cat > annotated.irdl <<'EOF'
  > Dialect broken {
  >   // expected-error@below {{at 'Bogus'}}
  >   Type t1 { Bogus }
  >   Operation ok { Operands() Results() }
  >   // expected-error@below {{at 'UnknownThing'}}
  >   Operation bad { Operands(x UnknownThing) Results() }
  >   // expected-error@below {{unknown name 'NoSuchConstraint'}}
  >   Type t2 { Parameters (p: NoSuchConstraint) }
  > }
  > EOF
  $ irdl-opt -d annotated.irdl --verify-diagnostics

A wrong or missing expectation is a harness failure with exit code 3:

  $ cat > wrong.irdl <<'EOF'
  > Dialect broken {
  >   // expected-error@below {{something else}}
  >   Type t1 { Bogus }
  > }
  > EOF
  $ irdl-opt -d wrong.irdl --verify-diagnostics
  wrong.irdl:3:13-18: error: unexpected error: at 'Bogus': expected Parameters, Summary, CppConstraint or '}'
  wrong.irdl:2:1: error: expected error {{something else}} was not produced at line 3
  [3]

Split-input-file: chunks separated by '// -----' are processed
independently; a malformed chunk reports its errors (with the line
numbers of the original file) and does not block later chunks:

  $ cat > chunks.mlir <<'EOF'
  > %a = "t.one"() : () -> (i32)
  > // -----
  > %b = "t.two"(%undef) : (i32) -> (i32)
  > // -----
  > %c = "t.three"() : () -> (f32)
  > EOF
  $ irdl-opt --split-input-file chunks.mlir
  chunks.mlir:3:14-20: error: use of undefined value %undef
    3 | %b = "t.two"(%undef) : (i32) -> (i32)
      |              ^~~~~~
  %0 = "t.one"() : () -> (i32)
  // -----
  %0 = "t.three"() : () -> (f32)
  [1]

Verifier errors from the paper's cmath dialect (Listing 9: constraint
variables tie operand and result types), as a --verify-diagnostics run:

  $ cat > listing9.mlir <<'EOF'
  > %c1 = "t.cast"() : () -> (!cmath.complex<f32>)
  > %c2 = "t.cast"() : () -> (!cmath.complex<f64>)
  > // expected-error@below {{constraint variable T already bound to !cmath.complex<f32>}}
  > %m = "cmath.mul"(%c1, %c2) : (!cmath.complex<f32>, !cmath.complex<f64>) -> (!cmath.complex<f32>)
  > // expected-error@below {{result 'res': constraint variable T already bound to f32, got i32}}
  > %n = "cmath.norm"(%m) : (!cmath.complex<f32>) -> (i32)
  > EOF
  $ irdl-opt --cmath --verify-diagnostics listing9.mlir

Without --verify-diagnostics the same file reports both verifier errors in
one run and exits with the verify-class code 2:

  $ grep -v expected-error listing9.mlir > listing9-plain.mlir
  $ irdl-opt --cmath listing9-plain.mlir
  listing9-plain.mlir:3:1-3: error: 'cmath.mul': operand 'rhs': constraint variable T already bound to !cmath.complex<f32>, got !cmath.complex<f64>
    3 | %m = "cmath.mul"(%c1, %c2) : (!cmath.complex<f32>, !cmath.complex<f64>) -> (!cmath.complex<f32>)
      | ^~
  listing9-plain.mlir:4:1-3: error: 'cmath.norm': result 'res': constraint variable T already bound to f32, got i32
    4 | %n = "cmath.norm"(%m) : (!cmath.complex<f32>) -> (i32)
      | ^~
  [2]

Verify-class and parse-class failures are distinguished: a file that does
not parse exits 1 even when verification would also fail elsewhere:

  $ cat > mixed.mlir <<'EOF'
  > %a = "t.one"( : ???
  > %m = "cmath.mul"() : () -> ()
  > EOF
  $ irdl-opt --cmath mixed.mlir --verify-only
  mixed.mlir:1:15-16: error: at ':': expected SSA value name
    1 | %a = "t.one"( : ???
      |               ^
  mixed.mlir:1:17: error: unexpected character '?'
    1 | %a = "t.one"( : ???
      |                 ^
  mixed.mlir:1:18: error: unexpected character '?'
    1 | %a = "t.one"( : ???
      |                  ^
  mixed.mlir:1:19: error: unexpected character '?'
    1 | %a = "t.one"( : ???
      |                   ^
  mixed.mlir:2:1-3: error: 'cmath.mul' produces 0 results but 1 names were bound
    2 | %m = "cmath.mul"() : () -> ()
      | ^~
  [1]
