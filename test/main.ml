let () =
  Alcotest.run "irdl"
    [
      ("support", Test_support.suite);
      ("attr", Test_attr.suite);
      ("intern", Test_intern.suite);
      ("graph", Test_graph.suite);
      ("graph-property", Test_graph_property.suite);
      ("ir-parser", Test_ir_parser.suite);
      ("verifier", Test_verifier.suite);
      ("dominance", Test_dominance.suite);
      ("builder", Test_builder.suite);
      ("native", Test_native.suite);
      ("printer", Test_printer.suite);
      ("ir-property", Test_ir_property.suite);
      ("irdl-frontend", Test_irdl_frontend.suite);
      ("pp-property", Test_pp_property.suite);
      ("constraints", Test_constraints.suite);
      ("constraint-compile", Test_constraint_compile.suite);
      ("verify-cache", Test_verify_cache.suite);
      ("resolve", Test_resolve.suite);
      ("registration", Test_registration.suite);
      ("opformat", Test_opformat.suite);
      ("rewrite", Test_rewrite.suite);
      ("pass", Test_pass.suite);
      ("textual-patterns", Test_textual.suite);
      ("cse", Test_cse.suite);
      ("corpus", Test_corpus.suite);
      ("skeleton", Test_skeleton.suite);
      ("analysis", Test_analysis.suite);
      ("docgen", Test_docgen.suite);
      ("xref", Test_xref.suite);
      ("feature-matrix", Test_feature_matrix.suite);
      ("diag-engine", Test_diag_engine.suite);
      ("parallel", Test_parallel.suite);
      ("recovery", Test_recovery.suite);
      ("robustness", Test_robustness.suite);
    ]
