(** Tests for the type/attribute domain. *)

open Irdl_ir
open Util

let ty = Alcotest.testable Attr.pp_ty Attr.equal_ty
let attr = Alcotest.testable Attr.pp Attr.equal

let builtin_printing () =
  Alcotest.(check string) "i32" "i32" (Attr.ty_to_string Attr.i32);
  Alcotest.(check string) "f64" "f64" (Attr.ty_to_string Attr.f64);
  Alcotest.(check string) "bf16" "bf16" (Attr.ty_to_string Attr.bf16);
  Alcotest.(check string) "index" "index" (Attr.ty_to_string Attr.Index);
  Alcotest.(check string) "none" "none" (Attr.ty_to_string Attr.None_ty);
  Alcotest.(check string) "si8" "si8"
    (Attr.ty_to_string (Attr.integer ~signedness:Attr.Signed 8));
  Alcotest.(check string) "ui16" "ui16"
    (Attr.ty_to_string (Attr.integer ~signedness:Attr.Unsigned 16))

let aggregate_printing () =
  Alcotest.(check string) "tuple" "tuple<i32, f32>"
    (Attr.ty_to_string (Attr.Tuple [ Attr.i32; Attr.f32 ]));
  Alcotest.(check string) "function" "(i32) -> (f32)"
    (Attr.ty_to_string (Attr.Function { inputs = [ Attr.i32 ]; outputs = [ Attr.f32 ] }))

let dynamic_printing () =
  Alcotest.(check string) "no params" "!cmath.complex"
    (Attr.ty_to_string (Attr.dynamic ~dialect:"cmath" ~name:"complex" []));
  Alcotest.(check string) "with params" "!cmath.complex<f32>"
    (Attr.ty_to_string complex_f32)

let attr_printing () =
  Alcotest.(check string) "int" "3 : i32"
    (Attr.to_string (Attr.int ~ty:Attr.i32 3L));
  Alcotest.(check string) "float" "1.5 : f64" (Attr.to_string (Attr.float 1.5));
  Alcotest.(check string) "string" "\"hi\"" (Attr.to_string (Attr.string "hi"));
  Alcotest.(check string) "bool" "true" (Attr.to_string (Attr.bool true));
  Alcotest.(check string) "array" "[1 : i64, 2 : i64]"
    (Attr.to_string (Attr.array [ Attr.int 1L; Attr.int 2L ]));
  Alcotest.(check string) "symbol" "@foo" (Attr.to_string (Attr.symbol "foo"));
  Alcotest.(check string) "enum" "#cmath<signedness.Signed>"
    (Attr.to_string (Attr.enum ~dialect:"cmath" ~enum:"signedness" "Signed"));
  Alcotest.(check string) "opaque" "#native<StringParam, \"x\">"
    (Attr.to_string (Attr.opaque ~tag:"StringParam" "x"))

let equality_basics () =
  Alcotest.check ty "same dynamic" complex_f32
    (Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ]);
  Alcotest.(check bool) "diff params" false
    (Attr.equal_ty complex_f32 complex_f64);
  Alcotest.(check bool) "diff widths" false (Attr.equal_ty Attr.i32 Attr.i64);
  Alcotest.(check bool) "signedness distinguishes" false
    (Attr.equal_ty Attr.i32 (Attr.integer ~signedness:Attr.Signed 32));
  Alcotest.(check bool) "int vs float" false (Attr.equal_ty Attr.i32 Attr.f32)

let equality_attrs () =
  Alcotest.check attr "ints" (Attr.int 3L) (Attr.int 3L);
  Alcotest.(check bool) "int ty matters" false
    (Attr.equal (Attr.int 3L) (Attr.int ~ty:Attr.i32 3L));
  Alcotest.(check bool) "dicts key-order-insensitive" true
    (Attr.equal
       (Attr.dict [ ("a", Attr.int 1L); ("b", Attr.int 2L) ])
       (Attr.dict [ ("b", Attr.int 2L); ("a", Attr.int 1L) ]));
  Alcotest.check attr "type attrs" (Attr.typ Attr.f32) (Attr.typ Attr.f32)

let dict_duplicate_keys () =
  (* Canonicalization rejects ambiguous dictionaries outright. *)
  match Attr.dict [ ("k", Attr.int 1L); ("k", Attr.int 2L) ] with
  | _ -> Alcotest.fail "duplicate keys accepted"
  | exception Irdl_support.Diag.Error_exn _ -> ()

let nan_equality () =
  (* Reflexivity must hold even for NaN payloads. *)
  let a = Attr.float Float.nan in
  Alcotest.(check bool) "nan = nan (bitwise)" true (Attr.equal a a)

let bool_int () =
  Alcotest.check attr "true" (Attr.int ~ty:Attr.i1 1L) (Attr.bool_int true);
  Alcotest.check attr "false" (Attr.int ~ty:Attr.i1 0L) (Attr.bool_int false)

let classifiers () =
  Alcotest.(check bool) "is_float f32" true (Attr.is_float_ty Attr.f32);
  Alcotest.(check bool) "is_float i32" false (Attr.is_float_ty Attr.i32);
  Alcotest.(check bool) "is_int i32" true (Attr.is_integer_ty Attr.i32)

let dict_find () =
  let d = Attr.dict [ ("k", Attr.int 1L) ] in
  Alcotest.(check (option attr)) "found" (Some (Attr.int 1L))
    (Attr.dict_find "k" d);
  Alcotest.(check (option attr)) "missing" None (Attr.dict_find "z" d);
  Alcotest.(check (option attr)) "non-dict" None (Attr.dict_find "k" Attr.Unit)

let invalid_width () =
  Alcotest.check_raises "zero width" (Invalid_argument
    "Attr.integer: width must be positive") (fun () ->
      ignore (Attr.integer 0))

(* Property: printing then parsing a type is the identity. *)
let ty_gen =
  let open QCheck2.Gen in
  let base =
    oneofl
      [ Attr.i1; Attr.i8; Attr.i16; Attr.i32; Attr.i64; Attr.f16; Attr.f32;
        Attr.f64; Attr.bf16; Attr.Index; Attr.None_ty;
        Attr.integer ~signedness:Attr.Signed 24;
        Attr.integer ~signedness:Attr.Unsigned 7 ]
  in
  let rec ty n =
    if n = 0 then base
    else
      frequency
        [
          (3, base);
          ( 1,
            let* elts = list_size (int_range 0 3) (ty (n - 1)) in
            return (Attr.Tuple elts) );
          ( 1,
            let* params = list_size (int_range 0 2) (ty (n - 1)) in
            return
              (Attr.dynamic ~dialect:"d" ~name:"t"
                 (List.map Attr.typ params)) );
          ( 1,
            let* i = list_size (int_range 0 2) (ty (n - 1)) in
            let* o = list_size (int_range 1 2) (ty (n - 1)) in
            return (Attr.Function { inputs = i; outputs = o }) );
        ]
  in
  ty 3

let ty_roundtrip_prop =
  QCheck2.Test.make ~name:"type print/parse roundtrip" ~count:200 ty_gen
    (fun t ->
      let ctx = Context.create () in
      match Parser.parse_type_string ctx (Attr.ty_to_string t) with
      | Ok t' -> Attr.equal_ty t t'
      | Error _ -> false)

let suite =
  [
    tc "builtin type printing" builtin_printing;
    tc "aggregate type printing" aggregate_printing;
    tc "dynamic type printing" dynamic_printing;
    tc "attribute printing" attr_printing;
    tc "type equality" equality_basics;
    tc "attribute equality" equality_attrs;
    tc "dict duplicate keys rejected" dict_duplicate_keys;
    tc "NaN attr equality is reflexive" nan_equality;
    tc "bool_int" bool_int;
    tc "type classifiers" classifiers;
    tc "dict_find" dict_find;
    tc "integer width validation" invalid_width;
    QCheck_alcotest.to_alcotest ty_roundtrip_prop;
  ]
