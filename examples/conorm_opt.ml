(* The paper's Listing 1 optimization, as a rewrite pattern over
   dynamically registered IRDL operations:

       norm(p) * norm(q)   ==>   norm(p * q)

   The pattern is written in the declarative DAG pattern language — no
   host-language matching code — which together with runtime dialect
   registration gives the "simple pattern-based compilation flow without
   additional C++" of paper section 3.

   Run with: dune exec examples/conorm_opt.exe *)

open Irdl_ir
open Irdl_rewrite

let conorm_ir =
  {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %norm_p = cmath.norm %p : f32
  %norm_q = cmath.norm %q : f32
  %pq = "arith.mulf"(%norm_p, %norm_q) : (f32, f32) -> f32
  "func.return"(%pq) : (f32) -> ()
}) {sym_name = "conorm"} : () -> ()
|}

(* |norm(p)| * |norm(q)| == |norm(p*q)| — one multiplication less. *)
let norm_of_mul : Irdl_rewrite.Pattern.t =
  Pattern.dag ~name:"norm-mul-to-mul-norm"
    ~root:
      (Pattern.m_op "arith.mulf"
         [
           Pattern.m_op "cmath.norm" [ Pattern.m_val "p" ];
           Pattern.m_op "cmath.norm" [ Pattern.m_val "q" ];
         ])
    ~replacement:
      (Pattern.b_op "cmath.norm"
         [
           Pattern.b_op "cmath.mul"
             [ Pattern.b_cap "p"; Pattern.b_cap "q" ]
             (Pattern.Ty_of_capture "p");
         ]
         (Pattern.Ty_fn
            (fun caps ->
              (* The norm of a complex is its element type. *)
              match Graph.Value.ty (Hashtbl.find caps "p") with
              | Attr.Dynamic { params = [ Attr.Type t ]; _ } -> t
              | _ -> Attr.f32)))
    ()

let () =
  let ctx = Context.create () in
  (match Irdl_dialects.Cmath.load ctx with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  let func =
    match Parser.parse_op_string ~file:"conorm.mlir" ctx conorm_ir with
    | Ok op -> op
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  Fmt.pr "before:@.%s@.@." (Printer.op_to_string ctx func);
  let stats = Driver.apply ctx [ norm_of_mul ] func in
  Fmt.pr "greedy driver: %a@.@." Driver.pp_stats stats;
  (match Verifier.verify ctx func with
  | Ok () -> Fmt.pr "rewritten IR verifies: OK@.@."
  | Error d -> Fmt.pr "rewritten IR is invalid: %a@." Irdl_support.Diag.pp d);
  Fmt.pr "after:@.%s@." (Printer.op_to_string ctx func);
  (* The rewrite must actually have fired. *)
  assert (Driver.applications stats = 1);
  let count name =
    let n = ref 0 in
    Graph.Op.walk func ~f:(fun o -> if Graph.Op.name o = name then incr n);
    !n
  in
  assert (count "cmath.mul" = 1);
  assert (count "cmath.norm" = 1);
  assert (count "arith.mulf" = 0)
