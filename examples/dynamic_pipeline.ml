(* A domain-specific compiler defined entirely at runtime.

   The paper's introduction motivates letting a compiler "generate IRs on
   the fly to represent and optimize domain-specific user-defined
   concepts". This example builds such a flow with zero compiled,
   dialect-specific code:

   1. a high-level `poly` dialect (dense univariate polynomials) is
      registered from IRDL text;
   2. a peephole optimization *and* a lowering to `cmath`/`arith` are
      registered from textual rewrite patterns;
   3. the transformation order is itself text: a pass pipeline
      "canonicalize,cse,dce" resolved against the builtin registry and run
      through the instrumented pass manager, verifying after every pass;
   4. the program parses, optimizes, lowers, and verifies — all against
      definitions that did not exist when this binary was compiled.

   Run with: dune exec examples/dynamic_pipeline.exe *)

open Irdl_ir

let poly_irdl =
  {|
Dialect poly {
  // A dense polynomial over a float coefficient type.
  Type poly {
    Parameters (coeff: !AnyOf<!f32, !f64>)
    Summary "A dense univariate polynomial"
  }

  Operation mul {
    ConstraintVars (T: !poly<AnyOf<!f32, !f64>>)
    Operands (lhs: !T, rhs: !T)
    Results (res: !T)
    Summary "Polynomial multiplication"
  }

  Operation eval {
    ConstraintVars (T: !AnyOf<!f32, !f64>)
    Operands (p: !poly<!T>, at: !T)
    Results (res: !T)
    Format "$p, $at : $T"
    Summary "Evaluate a polynomial at a point"
  }

  Operation const {
    Results (res: !poly<!f32>)
    Attributes (coefficients: array<float>)
    Summary "A constant polynomial"
  }
}
|}

(* Optimization (still at the poly level): evaluating a product of
   polynomials is cheaper as a product of evaluations.
   Lowering: that product of scalars becomes arith.mulf. *)
let patterns_src =
  {|
// eval(mul(p, q), x)  ==>  eval(p, x) * eval(q, x)
Pattern eval_of_mul {
  Benefit 2
  Match (poly.eval (poly.mul $p $q) $x)
  Rewrite (arith.mulf (poly.eval $p $x : $x) (poly.eval $q $x : $x) : $x)
}
|}

let program =
  {|
"func.func"() ({
^bb0(%p: !poly.poly<f32>, %q: !poly.poly<f32>, %x: f32):
  %pq = "poly.mul"(%p, %q) : (!poly.poly<f32>, !poly.poly<f32>) -> !poly.poly<f32>
  %y = poly.eval %pq, %x : f32
  "func.return"(%y) : (f32) -> ()
}) {sym_name = "eval_product"} : () -> ()
|}

let () =
  let ctx = Context.create () in
  (* Step 1: register the dialect from text. *)
  (match Irdl_core.Irdl.load ctx poly_irdl with
  | Ok _ -> Fmt.pr "registered 'poly' from IRDL text@."
  | Error d -> failwith (Irdl_support.Diag.to_string d));

  (* Step 2: register the pipeline from text. *)
  let patterns =
    match Irdl_rewrite.Textual.parse_patterns ctx patterns_src with
    | Ok ps -> ps
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  Fmt.pr "loaded %d rewrite pattern(s) from text@.@." (List.length patterns);

  (* Step 3: the pass pipeline is text too, resolved against the builtin
     registry (the patterns parameterize 'canonicalize'). *)
  let passes =
    match
      Irdl_pass.Pipeline.parse
        ~available:(Irdl_pass.Passes.builtin ~patterns ())
        "canonicalize,cse,dce"
    with
    | Ok ps -> ps
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  Fmt.pr "pipeline: %s@.@."
    (String.concat " -> " (List.map Irdl_pass.Pass.name passes));

  (* Step 4: compile a program. *)
  let func =
    match Parser.parse_op_string ~file:"poly.mlir" ctx program with
    | Ok op -> op
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  (match Verifier.verify ctx func with
  | Ok () -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  Fmt.pr "input:@.%s@.@." (Printer.op_to_string ctx func);

  (* The manager re-verifies after every pass: a pass that broke the IR
     would be caught here and attributed by name. *)
  let mgr = Irdl_pass.Pass_manager.create ~verify_each:true passes in
  (match Irdl_pass.Pass_manager.run mgr ctx [ func ] with
  | Ok report ->
      List.iter
        (fun (pr : Irdl_pass.Pass_manager.pass_report) ->
          Fmt.pr "  %-12s %a@." pr.pr_pass Irdl_support.Stats.pp pr.pr_stats)
        report.rp_passes;
      Fmt.pr "@.every pass verified against the dynamic definitions: OK@.@."
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  Fmt.pr "output:@.%s@." (Printer.op_to_string ctx func);

  (* The expensive poly.mul is gone; scalar math remains. *)
  let count name =
    let n = ref 0 in
    Graph.Op.walk func ~f:(fun o -> if Graph.Op.name o = name then incr n);
    !n
  in
  assert (count "poly.mul" = 0);
  assert (count "poly.eval" = 2);
  assert (count "arith.mulf" = 1)
