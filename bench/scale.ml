(* Scale benchmark for the intrusive IR core (BENCH_scale.json).

   Builds 10^3..10^6-op modules and measures the five macro workloads the
   core refactor targets: module construction, parsing, verification,
   canonicalization (cse + dce) and RAUW-heavy rewriting. An embedded
   list-based [Baseline] module replicates the former object graph
   (append = full list rebuild, replace-all-uses = full scope scan) so the
   speedup claims are measured against the real alternative rather than
   guessed; its quadratic construction keeps it to sizes <= 10^5.

   `--smoke` (used by CI) runs only the 10^4 row so the artifact stays
   cheap to produce on every push. *)

open Irdl_ir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Best-of-k for the small sizes, where one-shot timings are all noise. *)
let timed ?(repeats = 1) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t, r = time f in
    if t < !best then best := t;
    result := Some r
  done;
  (!best, Option.get !result)

(* ------------------------------------------------------------------ *)
(* Workload modules                                                    *)
(* ------------------------------------------------------------------ *)

(* A straight-line chain: op i consumes op i-1's result plus a block
   argument, so every result has exactly one use — the RAUW sweet spot. *)
let build_chain n =
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  let a = Graph.Block.arg blk 0 and b = Graph.Block.arg blk 1 in
  let prev = ref a in
  for i = 1 to n do
    let op =
      Graph.Op.create ~operands:[ !prev; b ] ~result_tys:[ Attr.i32 ]
        (if i land 1 = 0 then "t.add" else "t.mul")
    in
    Graph.Block.append blk op;
    prev := Graph.Op.result op 0
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

(* Duplicate-heavy module: only 64 distinct value-numbering keys, so CSE
   collapses almost everything and DCE sweeps the leftovers. *)
let build_duplicates n =
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  let a = Graph.Block.arg blk 0 and b = Graph.Block.arg blk 1 in
  for i = 1 to n do
    let op =
      Graph.Op.create ~operands:[ a; b ] ~result_tys:[ Attr.i32 ]
        ~attrs:[ ("k", Attr.int (Int64.of_int (i mod 64))) ]
        "t.add"
    in
    Graph.Block.append blk op
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

let chain_ops func =
  let ops = ref [] in
  Graph.Op.walk func ~f:(fun o -> if o != func then ops := o :: !ops);
  Array.of_list (List.rev !ops)

(* k pseudo-random single-use replacements: redirect op i's result to the
   entry block argument. O(1) each on the intrusive chains. *)
let rauw_replacements = 1_000

let run_rauw func =
  let ops = chain_ops func in
  let n = Array.length ops in
  let a =
    match func.Graph.regions with
    | [ r ] -> (
        match Graph.Region.entry r with
        | Some blk -> Graph.Block.arg blk 0
        | None -> failwith "no entry block")
    | _ -> failwith "expected one region"
  in
  for j = 0 to rauw_replacements - 1 do
    let op = ops.(j * 7919 mod n) in
    Graph.Value.replace_all_uses ~from:(Graph.Op.result op 0) ~to_:a
  done

(* ------------------------------------------------------------------ *)
(* The list-based baseline (the pre-refactor object graph)             *)
(* ------------------------------------------------------------------ *)

module Baseline = struct
  type value = { v_id : int }

  type op = {
    o_id : int;
    o_name : string;
    mutable operands : value list;
    results : value list;
  }

  type block = { mutable ops : op list; args : value list }

  let next = ref 0

  let fresh () =
    incr next;
    { v_id = !next }

  (* The old [Block.append]: rebuild the op list. *)
  let append b o = b.ops <- b.ops @ [ o ]

  let build n =
    let args = [ fresh (); fresh () ] in
    let b = { ops = []; args } in
    let a = List.nth args 0 and second = List.nth args 1 in
    let prev = ref a in
    for i = 1 to n do
      incr next;
      let op =
        {
          o_id = !next;
          o_name = (if i land 1 = 0 then "t.add" else "t.mul");
          operands = [ !prev; second ];
          results = [ fresh () ];
        }
      in
      append b op;
      prev := List.hd op.results
    done;
    (b, a)

  (* The old [replace_uses_in]: rewrite every op of the scope. *)
  let replace_uses b ~from ~to_ =
    List.iter
      (fun o ->
        o.operands <-
          List.map (fun v -> if v == from then to_ else v) o.operands)
      b.ops

  let run_rauw (b, a) =
    let ops = Array.of_list b.ops in
    let n = Array.length ops in
    for j = 0 to rauw_replacements - 1 do
      let op = ops.(j * 7919 mod n) in
      replace_uses b ~from:(List.hd op.results) ~to_:a
    done
end

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  n : int;
  build_s : float;
  parse_s : float;
  verify_s : float;
  canonicalize_s : float;
  rauw_s : float;
  baseline_build_s : float option;
  baseline_rauw_s : float option;
}

(* The quadratic baseline is capped: 10^6 list appends would take hours. *)
let baseline_cap = 100_000

let measure n : row =
  let ctx = Context.create () in
  let repeats = if n <= 10_000 then 3 else 1 in
  let build_s, func = timed ~repeats (fun () -> build_chain n) in
  let text = Printer.op_to_string ctx func in
  let parse_s, parsed =
    timed ~repeats (fun () ->
        match Parser.parse_op_string ctx text with
        | Ok op -> op
        | Error d -> failwith (Irdl_support.Diag.to_string d))
  in
  let verify_s, () =
    timed ~repeats (fun () ->
        match Verifier.verify ctx parsed with
        | Ok () -> ()
        | Error d -> failwith (Irdl_support.Diag.to_string d))
  in
  (* cse+dce mutates its module, so canonicalization gets a fresh one and a
     single shot. *)
  let dups = build_duplicates n in
  let canonicalize_s, () =
    time (fun () ->
        let _ = Irdl_rewrite.Cse.run ctx dups in
        let rw = Irdl_rewrite.Rewriter.create ctx dups in
        let _ = Irdl_rewrite.Rewriter.dce rw in
        ())
  in
  let rauw_s, () = time (fun () -> run_rauw func) in
  let baseline_build_s, baseline_rauw_s =
    if n <= baseline_cap then begin
      let bb, base = time (fun () -> Baseline.build n) in
      let br, () = time (fun () -> Baseline.run_rauw base) in
      (Some bb, Some br)
    end
    else (None, None)
  in
  {
    n;
    build_s;
    parse_s;
    verify_s;
    canonicalize_s;
    rauw_s;
    baseline_build_s;
    baseline_rauw_s;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let fnum v = Printf.sprintf "%.6f" v

let opt_num = function None -> "null" | Some v -> fnum v

let row_json r =
  Printf.sprintf
    {|    { "n": %d, "build_s": %s, "parse_s": %s, "verify_s": %s, "canonicalize_s": %s, "rauw_s": %s, "baseline_build_s": %s, "baseline_rauw_s": %s }|}
    r.n (fnum r.build_s) (fnum r.parse_s) (fnum r.verify_s)
    (fnum r.canonicalize_s) (fnum r.rauw_s)
    (opt_num r.baseline_build_s)
    (opt_num r.baseline_rauw_s)

let emit_json rows =
  (* Speedups vs the baseline at the largest size it was run at. *)
  let speedup =
    let rec last acc = function
      | [] -> acc
      | r :: rest ->
          last (if r.baseline_build_s <> None then Some r else acc) rest
    in
    match last None rows with
    | Some r ->
        Printf.sprintf
          {|{ "n": %d, "build": %.2f, "rauw": %.2f }|}
          r.n
          (Option.get r.baseline_build_s /. r.build_s)
          (Option.get r.baseline_rauw_s /. r.rauw_s)
    | None -> "null"
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "scale",
  "description": "intrusive-list IR core vs list-based baseline; times in seconds",
  "rauw_replacements": %d,
  "rows": [
%s
  ],
  "speedup_vs_baseline": %s
}
|}
      rauw_replacements
      (String.concat ",\n" (List.map row_json rows))
      speedup
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_scale.json (speedup vs baseline: %s)@." speedup

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let sizes =
    if smoke then [ 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let rows =
    List.map
      (fun n ->
        Fmt.pr "scale: n = %d...@." n;
        let r = measure n in
        Fmt.pr
          "  build %.4fs  parse %.4fs  verify %.4fs  canonicalize %.4fs  \
           rauw %.4fs%s@."
          r.build_s r.parse_s r.verify_s r.canonicalize_s r.rauw_s
          (match (r.baseline_build_s, r.baseline_rauw_s) with
          | Some bb, Some br ->
              Printf.sprintf "  [baseline: build %.4fs rauw %.4fs]" bb br
          | _ -> "");
        r)
      sizes
  in
  emit_json rows
