(* Scale benchmark for the intrusive IR core (BENCH_scale.json).

   Builds 10^3..10^6-op modules and measures the five macro workloads the
   core refactor targets: module construction, parsing, verification,
   canonicalization (cse + dce) and RAUW-heavy rewriting. An embedded
   list-based [Baseline] module replicates the former object graph
   (append = full list rebuild, replace-all-uses = full scope scan) so the
   speedup claims are measured against the real alternative rather than
   guessed; its quadratic construction keeps it to sizes <= 10^5.

   `--smoke` (used by CI) runs only the 10^4 row so the artifact stays
   cheap to produce on every push. *)

open Irdl_ir

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Best-of-k for the small sizes, where one-shot timings are all noise. *)
let timed ?(repeats = 1) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t, r = time f in
    if t < !best then best := t;
    result := Some r
  done;
  (!best, Option.get !result)

(* ------------------------------------------------------------------ *)
(* Workload modules                                                    *)
(* ------------------------------------------------------------------ *)

(* A straight-line chain: op i consumes op i-1's result plus a block
   argument, so every result has exactly one use — the RAUW sweet spot. *)
let build_chain n =
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  let a = Graph.Block.arg blk 0 and b = Graph.Block.arg blk 1 in
  let prev = ref a in
  for i = 1 to n do
    let op =
      Graph.Op.create ~operands:[ !prev; b ] ~result_tys:[ Attr.i32 ]
        (if i land 1 = 0 then "t.add" else "t.mul")
    in
    Graph.Block.append blk op;
    prev := Graph.Op.result op 0
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

(* Duplicate-heavy module: only 64 distinct value-numbering keys, so CSE
   collapses almost everything and DCE sweeps the leftovers. *)
let build_duplicates n =
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  let a = Graph.Block.arg blk 0 and b = Graph.Block.arg blk 1 in
  for i = 1 to n do
    let op =
      Graph.Op.create ~operands:[ a; b ] ~result_tys:[ Attr.i32 ]
        ~attrs:[ ("k", Attr.int (Int64.of_int (i mod 64))) ]
        "t.add"
    in
    Graph.Block.append blk op
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

let chain_ops func =
  let ops = ref [] in
  Graph.Op.walk func ~f:(fun o -> if o != func then ops := o :: !ops);
  Array.of_list (List.rev !ops)

(* k pseudo-random single-use replacements: redirect op i's result to the
   entry block argument. O(1) each on the intrusive chains. *)
let rauw_replacements = 1_000

let run_rauw func =
  let ops = chain_ops func in
  let n = Array.length ops in
  let a =
    match func.Graph.regions with
    | [ r ] -> (
        match Graph.Region.entry r with
        | Some blk -> Graph.Block.arg blk 0
        | None -> failwith "no entry block")
    | _ -> failwith "expected one region"
  in
  for j = 0 to rauw_replacements - 1 do
    let op = ops.(j * 7919 mod n) in
    Graph.Value.replace_all_uses ~from:(Graph.Op.result op 0) ~to_:a
  done

(* ------------------------------------------------------------------ *)
(* Flat modules: the streaming frontend's target shape                 *)
(* ------------------------------------------------------------------ *)

(* n top-level ops in a straight-line dependency chain. The streaming
   session yields (and the driver releases) one top-level op at a time, so
   this is the shape where parse-vs-stream peak memory diverges; the
   nested [build_chain] shape is one giant op and streams as a unit. *)
let flat_text n =
  let buf = Buffer.create (n * 48) in
  Buffer.add_string buf "%v0 = \"t.const\"() : () -> i32\n";
  for i = 1 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%%v%d = \"t.%s\"(%%v%d) : (i32) -> i32\n" i
         (if i land 1 = 0 then "add" else "mul")
         (i - 1))
  done;
  Buffer.contents buf

(* Materializing frontend: whole module parsed, then verified. The ops are
   kept alive across verification, as irdl-opt's materializing path does. *)
let run_flat_parse ctx text =
  match Parser.parse_ops ctx text with
  | Ok ops ->
      (match Verifier.verify_ops_all ctx ops with
      | [] -> ()
      | d :: _ -> failwith (Irdl_support.Diag.to_string d));
      ignore (Sys.opaque_identity ops)
  | Error d -> failwith (Irdl_support.Diag.to_string d)

(* Streaming frontend: parse, verify and release one op at a time. *)
let run_flat_stream ctx text =
  let session = Parser.Stream.create ctx text in
  let rec go () =
    match Parser.Stream.next session with
    | Ok None -> ()
    | Ok (Some op) ->
        (match Verifier.verify_all ctx op with
        | [] -> ()
        | d :: _ -> failwith (Irdl_support.Diag.to_string d));
        Parser.Stream.release op;
        go ()
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Peak-RSS measurement                                                *)
(* ------------------------------------------------------------------ *)

let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec go () =
        match input_line ic with
        | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:"
          -> (
            close_in ic;
            try
              Scanf.sscanf
                (String.sub line 6 (String.length line - 6))
                " %d" (fun kb -> Some kb)
            with Scanf.Scan_failure _ | Failure _ -> None)
        | _ -> go ()
        | exception End_of_file ->
            close_in ic;
            None
      in
      go ()

(* Writing "5" to clear_refs resets the process's VmHWM to its current
   RSS, so the subsequent high-water mark is the workload's own. *)
let reset_vmhwm () =
  try
    let oc = open_out "/proc/self/clear_refs" in
    output_string oc "5";
    close_out oc
  with Sys_error _ -> ()

(* The peak RSS growth (kB) attributable to [f], measured in a forked
   child, or None when /proc is unavailable. Forking isolates each
   measurement: OCaml 5's compactor is not reliable enough to return heap
   pages between in-process measurements, so running both workloads in one
   process would let the first poison the second's high-water mark. The
   input text is allocated before the fork, so it is already resident
   (shared, copy-on-write) in the post-reset floor, which is subtracted:
   only the workload's own allocations count. *)
let peak_rss_kb f =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let result =
        try
          reset_vmhwm ();
          let floor_kb = vmhwm_kb () in
          f ();
          match (floor_kb, vmhwm_kb ()) with
          | Some floor_kb, Some peak -> Some (max 0 (peak - floor_kb))
          | _ -> None
        with _ -> None
      in
      let oc = Unix.out_channel_of_descr wr in
      (match result with
      | Some kb -> Printf.fprintf oc "%d\n%!" kb
      | None -> Printf.fprintf oc "none\n%!");
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let res =
        match input_line ic with
        | s -> int_of_string_opt (String.trim s)
        | exception End_of_file -> None
      in
      close_in ic;
      ignore (Unix.waitpid [] pid);
      res

(* ------------------------------------------------------------------ *)
(* The list-based baseline (the pre-refactor object graph)             *)
(* ------------------------------------------------------------------ *)

module Baseline = struct
  type value = { v_id : int }

  type op = {
    o_id : int;
    o_name : string;
    mutable operands : value list;
    results : value list;
  }

  type block = { mutable ops : op list; args : value list }

  let next = ref 0

  let fresh () =
    incr next;
    { v_id = !next }

  (* The old [Block.append]: rebuild the op list. *)
  let append b o = b.ops <- b.ops @ [ o ]

  let build n =
    let args = [ fresh (); fresh () ] in
    let b = { ops = []; args } in
    let a = List.nth args 0 and second = List.nth args 1 in
    let prev = ref a in
    for i = 1 to n do
      incr next;
      let op =
        {
          o_id = !next;
          o_name = (if i land 1 = 0 then "t.add" else "t.mul");
          operands = [ !prev; second ];
          results = [ fresh () ];
        }
      in
      append b op;
      prev := List.hd op.results
    done;
    (b, a)

  (* The old [replace_uses_in]: rewrite every op of the scope. *)
  let replace_uses b ~from ~to_ =
    List.iter
      (fun o ->
        o.operands <-
          List.map (fun v -> if v == from then to_ else v) o.operands)
      b.ops

  let run_rauw (b, a) =
    let ops = Array.of_list b.ops in
    let n = Array.length ops in
    for j = 0 to rauw_replacements - 1 do
      let op = ops.(j * 7919 mod n) in
      replace_uses b ~from:(List.hd op.results) ~to_:a
    done
end

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  n : int;
  build_s : float;
  parse_s : float;
  verify_s : float;
  canonicalize_s : float;
  rauw_s : float;
  flat_parse_s : float;  (** materializing parse+verify, flat module *)
  flat_stream_s : float;  (** streaming parse+verify+release, same module *)
  flat_parse_rss_kb : int option;
  flat_stream_rss_kb : int option;
  baseline_build_s : float option;
  baseline_rauw_s : float option;
}

(* The quadratic baseline is capped: 10^6 list appends would take hours. *)
let baseline_cap = 100_000

let measure n : row =
  let ctx = Context.create () in
  let repeats = if n <= 10_000 then 3 else 1 in
  let build_s, func = timed ~repeats (fun () -> build_chain n) in
  let text = Printer.op_to_string ctx func in
  let parse_s, parsed =
    timed ~repeats (fun () ->
        match Parser.parse_op_string ctx text with
        | Ok op -> op
        | Error d -> failwith (Irdl_support.Diag.to_string d))
  in
  let verify_s, () =
    timed ~repeats (fun () ->
        match Verifier.verify ctx parsed with
        | Ok () -> ()
        | Error d -> failwith (Irdl_support.Diag.to_string d))
  in
  (* cse+dce mutates its module, so canonicalization gets a fresh one and a
     single shot. *)
  let dups = build_duplicates n in
  let canonicalize_s, () =
    time (fun () ->
        let _ = Irdl_rewrite.Cse.run ctx dups in
        let rw = Irdl_rewrite.Rewriter.create ctx dups in
        let _ = Irdl_rewrite.Rewriter.dce rw in
        ())
  in
  let rauw_s, () = time (fun () -> run_rauw func) in
  (* Parse-vs-stream over a flat module of the same op count: wall-clock in
     this process, peak RSS in forked children (one per path). *)
  let ftext = flat_text n in
  let flat_parse_s, () =
    timed ~repeats (fun () -> run_flat_parse ctx ftext)
  in
  let flat_stream_s, () =
    timed ~repeats (fun () -> run_flat_stream ctx ftext)
  in
  let flat_parse_rss_kb = peak_rss_kb (fun () -> run_flat_parse ctx ftext) in
  let flat_stream_rss_kb =
    peak_rss_kb (fun () -> run_flat_stream ctx ftext)
  in
  let baseline_build_s, baseline_rauw_s =
    if n <= baseline_cap then begin
      let bb, base = time (fun () -> Baseline.build n) in
      let br, () = time (fun () -> Baseline.run_rauw base) in
      (Some bb, Some br)
    end
    else (None, None)
  in
  {
    n;
    build_s;
    parse_s;
    verify_s;
    canonicalize_s;
    rauw_s;
    flat_parse_s;
    flat_stream_s;
    flat_parse_rss_kb;
    flat_stream_rss_kb;
    baseline_build_s;
    baseline_rauw_s;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let fnum v = Printf.sprintf "%.6f" v

let opt_num = function None -> "null" | Some v -> fnum v

let opt_int = function None -> "null" | Some v -> string_of_int v

let row_json r =
  Printf.sprintf
    {|    { "n": %d, "build_s": %s, "parse_s": %s, "verify_s": %s, "canonicalize_s": %s, "rauw_s": %s, "flat_parse_s": %s, "flat_stream_s": %s, "flat_parse_rss_kb": %s, "flat_stream_rss_kb": %s, "baseline_build_s": %s, "baseline_rauw_s": %s }|}
    r.n (fnum r.build_s) (fnum r.parse_s) (fnum r.verify_s)
    (fnum r.canonicalize_s) (fnum r.rauw_s) (fnum r.flat_parse_s)
    (fnum r.flat_stream_s)
    (opt_int r.flat_parse_rss_kb)
    (opt_int r.flat_stream_rss_kb)
    (opt_num r.baseline_build_s)
    (opt_num r.baseline_rauw_s)

let emit_json rows =
  (* Streaming-vs-materializing peak RSS at the largest size both were
     measured at: the headline number of the streaming frontend. *)
  let stream_rss_ratio =
    let rec last acc = function
      | [] -> acc
      | r :: rest ->
          last
            (match (r.flat_parse_rss_kb, r.flat_stream_rss_kb) with
            | Some _, Some _ -> Some r
            | _ -> acc)
            rest
    in
    match last None rows with
    | Some r ->
        Printf.sprintf
          {|{ "n": %d, "parse_rss_kb": %d, "stream_rss_kb": %d, "ratio": %.3f }|}
          r.n
          (Option.get r.flat_parse_rss_kb)
          (Option.get r.flat_stream_rss_kb)
          (float_of_int (Option.get r.flat_stream_rss_kb)
          /. float_of_int (Option.get r.flat_parse_rss_kb))
    | None -> "null"
  in
  (* Speedups vs the baseline at the largest size it was run at. *)
  let speedup =
    let rec last acc = function
      | [] -> acc
      | r :: rest ->
          last (if r.baseline_build_s <> None then Some r else acc) rest
    in
    match last None rows with
    | Some r ->
        Printf.sprintf
          {|{ "n": %d, "build": %.2f, "rauw": %.2f }|}
          r.n
          (Option.get r.baseline_build_s /. r.build_s)
          (Option.get r.baseline_rauw_s /. r.rauw_s)
    | None -> "null"
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "scale",
  "description": "intrusive-list IR core vs list-based baseline; times in seconds; flat_* columns compare the materializing and streaming frontends on an n-op flat module (peak RSS growth in kB, measured in forked children)",
  "rauw_replacements": %d,
  "rows": [
%s
  ],
  "speedup_vs_baseline": %s,
  "stream_rss_vs_parse": %s
}
|}
      rauw_replacements
      (String.concat ",\n" (List.map row_json rows))
      speedup stream_rss_ratio
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_scale.json (speedup vs baseline: %s)@." speedup

(* ------------------------------------------------------------------ *)
(* Bytecode: parse-vs-load (BENCH_bytecode.json)                       *)
(* ------------------------------------------------------------------ *)

(* Text parse vs bytecode load over the same flat n-op module, plus the
   emit cost and the size of both encodings. Loading skips lexing, name
   resolution and attribute/type parsing — the tables intern directly — so
   this is the warm-start headline of the bytecode subsystem. *)
type bytecode_row = {
  bc_n : int;
  text_bytes : int;
  bytecode_bytes : int;
  text_parse_s : float;
  bc_emit_s : float;
  bc_load_s : float;
}

(* One-shot wall clock of [f], run in a freshly forked child. In-process
   repetition is useless here: a materialized million-op module leaves the
   major heap grown and dirty, and whichever workload runs on that heap
   pays the previous one's GC marking — in-process orderings swing the
   parse/load ratio by 2x. A fork gives every measurement the same pristine
   heap, and matches how the numbers are consumed (irdl-opt parses or loads
   a file once per process). *)
let forked_seconds f =
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let line =
        match time (fun () -> ignore (Sys.opaque_identity (f ()))) with
        | t, () -> Printf.sprintf "%.6f" t
        | exception e -> "err " ^ Printexc.to_string e
      in
      let oc = Unix.out_channel_of_descr wr in
      Printf.fprintf oc "%s\n%!" line;
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let line = try input_line ic with End_of_file -> "err child died" in
      close_in ic;
      ignore (Unix.waitpid [] pid);
      match float_of_string_opt (String.trim line) with
      | Some t -> t
      | None -> failwith ("bytecode bench child failed: " ^ line))

let best_forked ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t = forked_seconds f in
    if t < !best then best := t
  done;
  !best

let measure_bytecode n : bytecode_row =
  let ctx = Context.create () in
  let text = flat_text n in
  let repeats = 3 in
  let parse () =
    match Parser.parse_ops ctx text with
    | Ok ops -> ops
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  let load blob =
    match Irdl_bytecode.Bytecode.read_module ctx blob with
    | Ok ops -> ops
    | Error d -> failwith (Irdl_support.Diag.to_string d)
  in
  (* The blob is produced (and the round trip checked) in a throwaway child
     that writes it to a temp file: the emitting parse grows a heap the
     measurement children must not inherit across fork. Emit time is best
     of k in that child, measured while its module is resident — the only
     state emit needs. *)
  let tmp = Filename.temp_file "irdl_bench" ".irdlbc" in
  let bc_emit_s =
    let rd, wr = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        Unix.close rd;
        let line =
          try
            let ops = parse () in
            let emit () =
              match Irdl_bytecode.Bytecode.Write.module_to_string ops with
              | Ok blob -> blob
              | Error d -> failwith (Irdl_support.Diag.to_string d)
            in
            let t, blob = timed ~repeats emit in
            if
              not (Irdl_bytecode.Bytecode.Equal.module_eq ops (load blob))
            then failwith "bytecode round-trip mismatch in benchmark";
            let oc = open_out_bin tmp in
            output_string oc blob;
            close_out oc;
            Printf.sprintf "%.6f" t
          with e -> "err " ^ Printexc.to_string e
        in
        let oc = Unix.out_channel_of_descr wr in
        Printf.fprintf oc "%s\n%!" line;
        Unix._exit 0
    | pid -> (
        Unix.close wr;
        let ic = Unix.in_channel_of_descr rd in
        let line = try input_line ic with End_of_file -> "err child died" in
        close_in ic;
        ignore (Unix.waitpid [] pid);
        match float_of_string_opt (String.trim line) with
        | Some t -> t
        | None -> failwith ("bytecode bench child failed: " ^ line))
  in
  let blob =
    let ic = open_in_bin tmp in
    let b = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tmp;
    b
  in
  let text_parse_s = best_forked ~repeats parse in
  let bc_load_s = best_forked ~repeats (fun () -> load blob) in
  {
    bc_n = n;
    text_bytes = String.length text;
    bytecode_bytes = String.length blob;
    text_parse_s;
    bc_emit_s;
    bc_load_s;
  }

let bytecode_row_json r =
  Printf.sprintf
    {|    { "n": %d, "text_bytes": %d, "bytecode_bytes": %d, "text_parse_s": %s, "emit_s": %s, "load_s": %s, "load_speedup": %.2f }|}
    r.bc_n r.text_bytes r.bytecode_bytes (fnum r.text_parse_s)
    (fnum r.bc_emit_s) (fnum r.bc_load_s)
    (r.text_parse_s /. r.bc_load_s)

let emit_bytecode_json rows =
  let headline =
    match List.rev rows with
    | [] -> "null"
    | r :: _ ->
        Printf.sprintf
          {|{ "n": %d, "text_parse_s": %s, "load_s": %s, "speedup": %.2f }|}
          r.bc_n (fnum r.text_parse_s) (fnum r.bc_load_s)
          (r.text_parse_s /. r.bc_load_s)
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "bytecode",
  "description": "text parse vs bytecode load of the same flat n-op module; times in seconds, each measurement one-shot in a freshly forked child (best of k forks) so no workload inherits another's grown heap; emit_s is the serialization cost; load_speedup = text_parse_s / load_s",
  "rows": [
%s
  ],
  "load_speedup_at_largest": %s
}
|}
      (String.concat ",\n" (List.map bytecode_row_json rows))
      headline
  in
  let oc = open_out "BENCH_bytecode.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_bytecode.json (load speedup: %s)@." headline

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let bytecode_only =
    Array.exists (fun a -> a = "--bytecode-only") Sys.argv
  in
  let bc_sizes = if smoke then [ 10_000 ] else [ 100_000; 1_000_000 ] in
  let bc_rows =
    List.map
      (fun n ->
        Fmt.pr "bytecode: n = %d...@." n;
        let r = measure_bytecode n in
        Fmt.pr
          "  parse %.4fs  emit %.4fs  load %.4fs  (%.2fx; %d -> %d bytes)@."
          r.text_parse_s r.bc_emit_s r.bc_load_s
          (r.text_parse_s /. r.bc_load_s)
          r.text_bytes r.bytecode_bytes;
        r)
      bc_sizes
  in
  emit_bytecode_json bc_rows;
  if bytecode_only then exit 0;
  let sizes =
    if smoke then [ 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let rows =
    List.map
      (fun n ->
        Fmt.pr "scale: n = %d...@." n;
        let r = measure n in
        Fmt.pr
          "  build %.4fs  parse %.4fs  verify %.4fs  canonicalize %.4fs  \
           rauw %.4fs%s@."
          r.build_s r.parse_s r.verify_s r.canonicalize_s r.rauw_s
          (match (r.baseline_build_s, r.baseline_rauw_s) with
          | Some bb, Some br ->
              Printf.sprintf "  [baseline: build %.4fs rauw %.4fs]" bb br
          | _ -> "");
        Fmt.pr "  flat: parse %.4fs  stream %.4fs%s@." r.flat_parse_s
          r.flat_stream_s
          (match (r.flat_parse_rss_kb, r.flat_stream_rss_kb) with
          | Some p, Some s ->
              Printf.sprintf "  [rss: parse %d kB, stream %d kB, %.1f%%]" p s
                (100. *. float_of_int s /. float_of_int p)
          | _ -> "");
        r)
      sizes
  in
  emit_json rows
