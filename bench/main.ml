(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (section 6) from the bundled IRDL corpus — the same output as
   `irdl-stats`, kept here so `dune exec bench/main.exe` reproduces the
   paper end to end.

   Part 2 runs bechamel micro-benchmarks: one workload per experiment
   (the computation that regenerates each table/figure) plus the
   performance characteristics of the implementation itself (parse,
   resolve, registration, verification, printing, parsing, rewriting) —
   including the ablations called out in DESIGN.md (custom formats vs
   generic syntax). The paper reports no absolute performance numbers;
   these benches back the "runtime registration without recompilation"
   claim with measured costs. *)

open Bechamel
open Toolkit

let corpus =
  lazy
    (match Irdl_dialects.Corpus.analyze () with
    | Ok dls -> dls
    | Error d -> failwith (Irdl_support.Diag.to_string d))

(* ------------------------------------------------------------------ *)
(* Part 1: tables and figures                                          *)
(* ------------------------------------------------------------------ *)

let print_report () =
  Fmt.pr "############ Reproduction of the paper's evaluation ############@.";
  Irdl_analysis.Report.full Fmt.stdout (Lazy.force corpus);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Part 2: benchmarks                                                  *)
(* ------------------------------------------------------------------ *)

let spv_source =
  lazy
    (let e =
       List.find (fun (e : Irdl_dialects.Corpus.entry) -> e.name = "spv")
         Irdl_dialects.Corpus.all
     in
     e.source)

(* Pre-built state for the steady-state benches. *)
let cmath_ctx =
  lazy
    (let ctx = Irdl_ir.Context.create () in
     match Irdl_dialects.Cmath.load ctx with
     | Ok _ -> ctx
     | Error d -> failwith (Irdl_support.Diag.to_string d))

let conorm_text =
  {|
"func.func"() ({
^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):
  %np = cmath.norm %p : f32
  %nq = cmath.norm %q : f32
  %m = "arith.mulf"(%np, %nq) : (f32, f32) -> f32
  "func.return"(%m) : (f32) -> ()
}) {sym_name = "conorm"} : () -> ()
|}

let conorm_op =
  lazy
    (let ctx = Lazy.force cmath_ctx in
     match Irdl_ir.Parser.parse_op_string ctx conorm_text with
     | Ok op -> op
     | Error d -> failwith (Irdl_support.Diag.to_string d))

let mul_op =
  lazy
    (let complex =
       Irdl_ir.Attr.dynamic ~dialect:"cmath" ~name:"complex"
         [ Irdl_ir.Attr.typ Irdl_ir.Attr.f32 ]
     in
     let v =
       Irdl_ir.Graph.Op.result
         (Irdl_ir.Graph.Op.create ~result_tys:[ complex ] "t.v")
         0
     in
     Irdl_ir.Graph.Op.create ~operands:[ v; v ] ~result_tys:[ complex ]
       "cmath.mul")

let norm_of_mul_pattern =
  Irdl_rewrite.Pattern.dag ~name:"norm-mul"
    ~root:
      (Irdl_rewrite.Pattern.m_op "arith.mulf"
         [
           Irdl_rewrite.Pattern.m_op "cmath.norm"
             [ Irdl_rewrite.Pattern.m_val "p" ];
           Irdl_rewrite.Pattern.m_op "cmath.norm"
             [ Irdl_rewrite.Pattern.m_val "q" ];
         ])
    ~replacement:
      (Irdl_rewrite.Pattern.b_op "cmath.norm"
         [
           Irdl_rewrite.Pattern.b_op "cmath.mul"
             [ Irdl_rewrite.Pattern.b_cap "p"; Irdl_rewrite.Pattern.b_cap "q" ]
             (Irdl_rewrite.Pattern.Ty_of_capture "p");
         ]
         (Irdl_rewrite.Pattern.Ty_const Irdl_ir.Attr.f32))
    ()

let profiles =
  lazy (Irdl_analysis.Op_stats.profiles_of_corpus (Lazy.force corpus))

let finals =
  lazy
    (List.map
       (fun (dl : Irdl_core.Resolve.dialect) ->
         (dl.dl_name, List.length dl.dl_ops))
       (Lazy.force corpus))

let stage = Staged.stage

(* One Test.make per table/figure: the computation that regenerates it. *)
let figure_tests =
  [
    Test.make ~name:"table1:corpus-parse-resolve"
      (stage (fun () ->
           match Irdl_dialects.Corpus.analyze () with
           | Ok dls -> List.length dls
           | Error _ -> assert false));
    Test.make ~name:"fig3:evolution-series"
      (stage (fun () ->
           Irdl_analysis.Evolution.series ~finals:(Lazy.force finals)));
    Test.make ~name:"fig4:ops-per-dialect"
      (stage (fun () ->
           List.map
             (fun (dl : Irdl_core.Resolve.dialect) -> List.length dl.dl_ops)
             (Lazy.force corpus)));
    Test.make ~name:"fig5:operand-histograms"
      (stage (fun () ->
           let ps = Lazy.force profiles in
           ( Irdl_analysis.Op_stats.operand_buckets ps,
             Irdl_analysis.Op_stats.variadic_operand_buckets ps )));
    Test.make ~name:"fig6:result-histograms"
      (stage (fun () ->
           let ps = Lazy.force profiles in
           ( Irdl_analysis.Op_stats.result_buckets ps,
             Irdl_analysis.Op_stats.variadic_result_buckets ps )));
    Test.make ~name:"fig7:attr-region-histograms"
      (stage (fun () ->
           let ps = Lazy.force profiles in
           ( Irdl_analysis.Op_stats.attribute_buckets ps,
             Irdl_analysis.Op_stats.region_buckets ps )));
    Test.make ~name:"fig8:param-kinds"
      (stage (fun () ->
           let dls = Lazy.force corpus in
           ( Irdl_analysis.Param_stats.histogram
               (List.concat_map
                  (fun (dl : Irdl_core.Resolve.dialect) -> dl.dl_types)
                  dls),
             Irdl_analysis.Param_stats.histogram
               (List.concat_map
                  (fun (dl : Irdl_core.Resolve.dialect) -> dl.dl_attrs)
                  dls) )));
    Test.make ~name:"fig9-10:def-verifier-splits"
      (stage (fun () ->
           List.map
             (fun (dl : Irdl_core.Resolve.dialect) ->
               ( Irdl_analysis.Expressiveness.def_split dl.dl_types,
                 Irdl_analysis.Expressiveness.verifier_split dl.dl_attrs ))
             (Lazy.force corpus)));
    Test.make ~name:"fig11:op-expressiveness"
      (stage (fun () ->
           let ops =
             List.concat_map
               (fun (dl : Irdl_core.Resolve.dialect) -> dl.dl_ops)
               (Lazy.force corpus)
           in
           ( Irdl_analysis.Expressiveness.op_local_split ops,
             Irdl_analysis.Expressiveness.op_verifier_split ops )));
    Test.make ~name:"fig12:native-categories"
      (stage (fun () ->
           Irdl_analysis.Expressiveness.category_histogram
             (Lazy.force corpus)));
  ]

(* Ablation: constraint-variable environment threading vs fixed types. *)
let vars_ablation_ctx =
  lazy
    (let ctx = Irdl_ir.Context.create () in
     match
       Irdl_core.Irdl.load ctx
         {|Dialect ab {
             Operation mul_vars {
               ConstraintVars (T: !AnyOf<!f32, !f64>)
               Operands (a: !T, b: !T)
               Results (r: !T)
             }
             Operation mul_fixed {
               Operands (a: !f32, b: !f32)
               Results (r: !f32)
             }
           }|}
     with
     | Ok _ -> ctx
     | Error d -> failwith (Irdl_support.Diag.to_string d))

let ablation_op name =
  lazy
    (let v =
       Irdl_ir.Graph.Op.result
         (Irdl_ir.Graph.Op.create ~result_tys:[ Irdl_ir.Attr.f32 ] "t.v")
         0
     in
     Irdl_ir.Graph.Op.create ~operands:[ v; v ]
       ~result_tys:[ Irdl_ir.Attr.f32 ] name)

let mul_vars_op = ablation_op "ab.mul_vars"
let mul_fixed_op = ablation_op "ab.mul_fixed"

let pattern_src =
  {|Pattern p {
      Match (arith.mulf (cmath.norm $p) (cmath.norm $q))
      Rewrite (cmath.norm (cmath.mul $p $q : $p) : f32)
    }|}

(* Implementation performance and DESIGN.md ablations. *)
let perf_tests =
  [
    Test.make ~name:"perf:register-full-corpus-28-dialects"
      (stage (fun () ->
           let ctx = Irdl_ir.Context.create () in
           Irdl_dialects.Corpus.load_all ctx));
    Test.make ~name:"perf:verify-constraint-vars(ablation)"
      (stage (fun () ->
           Irdl_ir.Verifier.verify_op (Lazy.force vars_ablation_ctx)
             (Lazy.force mul_vars_op)));
    Test.make ~name:"perf:verify-fixed-types(ablation)"
      (stage (fun () ->
           Irdl_ir.Verifier.verify_op (Lazy.force vars_ablation_ctx)
             (Lazy.force mul_fixed_op)));
    Test.make ~name:"perf:parse-textual-pattern"
      (stage (fun () ->
           Irdl_rewrite.Textual.parse_patterns (Lazy.force cmath_ctx)
             pattern_src));
    Test.make ~name:"perf:irdl-parse-cmath"
      (stage (fun () -> Irdl_core.Parser.parse_file Irdl_dialects.Cmath.source));
    Test.make ~name:"perf:irdl-parse-spv-187ops"
      (stage (fun () -> Irdl_core.Parser.parse_file (Lazy.force spv_source)));
    Test.make ~name:"perf:resolve-cmath"
      (stage (fun () ->
           match Irdl_core.Parser.parse_one Irdl_dialects.Cmath.source with
           | Ok ast -> Irdl_core.Resolve.resolve_dialect ast
           | Error _ -> assert false));
    Test.make ~name:"perf:register-cmath-dialect"
      (stage (fun () ->
           let ctx = Irdl_ir.Context.create () in
           Irdl_core.Irdl.load ctx Irdl_dialects.Cmath.source));
    Test.make ~name:"perf:verify-cmath-mul"
      (stage (fun () ->
           Irdl_ir.Verifier.verify_op (Lazy.force cmath_ctx)
             (Lazy.force mul_op)));
    Test.make ~name:"perf:verify-conorm-function"
      (stage (fun () ->
           Irdl_ir.Verifier.verify (Lazy.force cmath_ctx)
             (Lazy.force conorm_op)));
    Test.make ~name:"perf:ir-parse-conorm"
      (stage (fun () ->
           Irdl_ir.Parser.parse_op_string (Lazy.force cmath_ctx) conorm_text));
    Test.make ~name:"perf:ir-print-custom-formats"
      (stage (fun () ->
           Irdl_ir.Printer.op_to_string (Lazy.force cmath_ctx)
             (Lazy.force conorm_op)));
    Test.make ~name:"perf:ir-print-generic(ablation)"
      (stage (fun () ->
           Irdl_ir.Printer.op_to_string ~generic:true (Lazy.force cmath_ctx)
             (Lazy.force conorm_op)));
    Test.make ~name:"perf:dominance-verify-conorm"
      (stage (fun () -> Irdl_ir.Dominance.verify (Lazy.force conorm_op)));
    Test.make ~name:"perf:greedy-rewrite-conorm"
      (stage (fun () ->
           let ctx = Lazy.force cmath_ctx in
           match Irdl_ir.Parser.parse_op_string ctx conorm_text with
           | Ok op -> Irdl_rewrite.Driver.apply ctx [ norm_of_mul_pattern ] op
           | Error _ -> assert false));
    (* The pass manager's overhead over calling the transformations
       directly: pipeline resolution, per-pass timing and stats
       aggregation (plus a whole-module re-verify per pass with
       --verify-each). *)
    Test.make ~name:"perf:pass-pipeline-canonicalize-cse-dce"
      (stage (fun () ->
           let ctx = Lazy.force cmath_ctx in
           match Irdl_ir.Parser.parse_op_string ctx conorm_text with
           | Ok op ->
               let passes =
                 match
                   Irdl_pass.Pipeline.parse
                     ~available:
                       (Irdl_pass.Passes.builtin
                          ~patterns:[ norm_of_mul_pattern ] ())
                     "canonicalize,cse,dce"
                 with
                 | Ok ps -> ps
                 | Error _ -> assert false
               in
               Irdl_pass.Pass_manager.run
                 (Irdl_pass.Pass_manager.create passes)
                 ctx [ op ]
           | Error _ -> assert false));
    Test.make ~name:"perf:pass-pipeline-verify-each(ablation)"
      (stage (fun () ->
           let ctx = Lazy.force cmath_ctx in
           match Irdl_ir.Parser.parse_op_string ctx conorm_text with
           | Ok op ->
               let passes =
                 match
                   Irdl_pass.Pipeline.parse
                     ~available:
                       (Irdl_pass.Passes.builtin
                          ~patterns:[ norm_of_mul_pattern ] ())
                     "canonicalize,cse,dce"
                 with
                 | Ok ps -> ps
                 | Error _ -> assert false
               in
               Irdl_pass.Pass_manager.run
                 (Irdl_pass.Pass_manager.create ~verify_each:true passes)
                 ctx [ op ]
           | Error _ -> assert false));
  ]

(* ------------------------------------------------------------------ *)
(* Uniquing (hash-consing) benchmarks                                  *)
(* ------------------------------------------------------------------ *)

(* A deep attribute tree built with BARE variant constructors, bypassing
   the interning smart constructors, so [Attr.equal] on two independent
   builds must do the full structural walk. ~2^n nodes. *)
let rec deep_raw n : Irdl_ir.Attr.t =
  let open Irdl_ir in
  if n = 0 then Attr.Int { value = 42L; ty = Attr.i64 }
  else
    Attr.Array
      [
        Attr.Dict
          [ ("k0", deep_raw (n - 1)); ("k1", Attr.String "payload") ];
        Attr.Dyn_attr
          { dialect = "bench"; name = "node"; params = [ deep_raw (n - 1) ] };
      ]

let deep_a = lazy (deep_raw 10)
let deep_b = lazy (deep_raw 10)
let interned_a = lazy (Irdl_ir.Attr.intern (Lazy.force deep_a))
let interned_b = lazy (Irdl_ir.Attr.intern (Lazy.force deep_b))

(* A large straight-line module with many value-numbering duplicates:
   2000 ops over 16 distinct keys, so CSE fingerprints every op (ids for
   attrs and result types) and eliminates the bulk of them. *)
let make_big_module () =
  let open Irdl_ir in
  let blk = Graph.Block.create ~arg_tys:[ Attr.i32; Attr.i32 ] () in
  let a, b =
    match Graph.Block.args blk with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  for i = 0 to 1999 do
    let op =
      Graph.Op.create ~operands:[ a; b ]
        ~attrs:[ ("k", Attr.int (Int64.of_int (i mod 16))) ]
        ~result_tys:[ Attr.i32 ] "t.add"
    in
    Graph.Block.append blk op
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

let intern_tests =
  [
    Test.make ~name:"attr-equal:deep-structural"
      (stage (fun () ->
           Irdl_ir.Attr.equal (Lazy.force deep_a) (Lazy.force deep_b)));
    Test.make ~name:"attr-equal:interned"
      (stage (fun () ->
           Irdl_ir.Attr.equal (Lazy.force interned_a)
             (Lazy.force interned_b)));
    Test.make ~name:"cse:synthetic-2000ops"
      (stage (fun () ->
           let ctx = Irdl_ir.Context.create () in
           Irdl_rewrite.Cse.run ctx (make_big_module ())));
  ]

(* ------------------------------------------------------------------ *)
(* Verification engine benchmarks                                      *)
(* ------------------------------------------------------------------ *)

(* The whole 28-dialect corpus plus cmath (native hooks included), once
   with compiled constraint checkers and the memoizing cache (the
   production configuration) and once with the interpreted reference
   verifiers (the pre-compilation baseline). *)
let make_verify_ctx ~compile () =
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create () in
  Irdl_dialects.Cmath.register_hooks native;
  (match Irdl_dialects.Corpus.load_all ~native ~compile ctx with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  (match
     Irdl_core.Irdl.load_one ~native ~compile ctx Irdl_dialects.Cmath.source
   with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  ctx

let verify_compiled_ctx = lazy (make_verify_ctx ~compile:true ())
let verify_interp_ctx = lazy (make_verify_ctx ~compile:false ())

(* A module shaped like real IR: chains of cmath.mul / cmath.norm over
   !cmath.complex<f32> (constraint variables, parameterized types), values
   with rich types (BoundedVector with its native hook, function types over
   dynamic types), and ops carrying sizable shared attribute payloads
   (arrays of parameterized dynamic attributes — the analog of MLIR's
   affine maps, segment arrays and dense constants). Hash-consing makes
   every repeat visit of these nodes a uniquer hit; the memoized cache
   turns their re-verification into a table probe. *)
let make_verify_module () =
  let open Irdl_ir in
  let complex =
    Attr.dynamic ~dialect:"cmath" ~name:"complex" [ Attr.typ Attr.f32 ]
  in
  (* 8 distinct payloads of 32 parameterized dynamic attributes each,
     shared round-robin by the ops below. *)
  let payloads =
    Array.init 8 (fun k ->
        Attr.array
          (List.init 32 (fun j ->
               Attr.dyn_attr ~dialect:"cmath" ~name:"StringAttr"
                 [ Attr.opaque ~tag:"StringParam" (Fmt.str "s%d_%d" k j) ])))
  in
  let fn_ty =
    Attr.function_ty
      ~inputs:(List.init 8 (fun _ -> complex))
      ~outputs:[ Attr.f32 ]
  in
  let blk = Graph.Block.create ~arg_tys:[ complex; complex ] () in
  let p, q =
    match Graph.Block.args blk with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let last = ref p in
  for i = 0 to 299 do
    let mul =
      Graph.Op.create ~operands:[ !last; q ] ~result_tys:[ complex ]
        ~attrs:[ ("payload", payloads.(i mod 8)) ]
        "cmath.mul"
    in
    Graph.Block.append blk mul;
    let norm =
      Graph.Op.create
        ~operands:[ Graph.Op.result mul 0 ]
        ~result_tys:[ Attr.f32 ] "cmath.norm"
    in
    Graph.Block.append blk norm;
    let bv =
      Attr.dynamic ~dialect:"cmath" ~name:"BoundedVector"
        [
          Attr.typ Attr.f32;
          Attr.int
            ~ty:(Attr.integer ~signedness:Attr.Unsigned 32)
            (Int64.of_int (i mod 16));
        ]
    in
    Graph.Block.append blk
      (Graph.Op.create ~result_tys:[ bv; fn_ty ]
         ~attrs:[ ("payload", payloads.((i + 3) mod 8)) ]
         "t.v");
    last := Graph.Op.result mul 0
  done;
  Graph.Op.create ~regions:[ Graph.Region.create ~blocks:[ blk ] () ] "t.func"

let verify_module = lazy (make_verify_module ())

let verify_tests =
  [
    (* Production configuration: compiled checkers, warm memoized cache. *)
    Test.make ~name:"verify:compiled-memoized"
      (stage (fun () ->
           let ctx = Lazy.force verify_compiled_ctx in
           Irdl_ir.Context.set_verify_cache ctx true;
           Irdl_ir.Verifier.verify ctx (Lazy.force verify_module)));
    (* Compiled checkers with memoization switched off: isolates the
       constraint-compilation layer from the caching layer. *)
    Test.make ~name:"verify:compiled-uncached"
      (stage (fun () ->
           let ctx = Lazy.force verify_compiled_ctx in
           Irdl_ir.Context.set_verify_cache ctx false;
           Irdl_ir.Verifier.verify ctx (Lazy.force verify_module)));
    (* The pre-PR baseline: interpreted constraint trees, every type and
       attribute re-walked on every visit. *)
    Test.make ~name:"verify:interpreted-uncached(baseline)"
      (stage (fun () ->
           let ctx = Lazy.force verify_interp_ctx in
           Irdl_ir.Context.set_verify_cache ctx false;
           Irdl_ir.Verifier.verify ctx (Lazy.force verify_module)));
  ]

let benchmark tests =
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let test = Test.make_grouped ~name:"irdl" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | _ -> Float.nan
      in
      (name, ns) :: acc)
    results []
  |> List.sort compare

let print_rows rows =
  Fmt.pr "%-45s %15s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.0f ns" ns
      in
      Fmt.pr "%-45s %15s@." name pretty)
    rows

let find_ns rows suffix =
  let matches (name, _) =
    let nl = String.length name and sl = String.length suffix in
    nl >= sl && String.sub name (nl - sl) sl = suffix
  in
  match List.find_opt matches rows with Some (_, ns) -> ns | None -> Float.nan

(* Machine-readable summary backing the uniquing acceptance criterion:
   interned equality must beat the deep structural walk by >= 5x. *)
let emit_intern_json rows =
  let deep = find_ns rows "attr-equal:deep-structural" in
  let interned = find_ns rows "attr-equal:interned" in
  let cse = find_ns rows "cse:synthetic-2000ops" in
  let speedup =
    if Float.is_nan deep || Float.is_nan interned || interned <= 0. then
      Float.nan
    else deep /. interned
  in
  let ty_stats, attr_stats = Irdl_ir.Attr.uniquer_stats () in
  let stats_json (s : Irdl_ir.Intern.stats) =
    Fmt.str
      {|{ "nodes": %d, "hits": %d, "misses": %d, "hit_rate": %.4f }|}
      s.Irdl_ir.Intern.nodes s.Irdl_ir.Intern.hits s.Irdl_ir.Intern.misses
      (Irdl_ir.Intern.hit_rate s)
  in
  let num f = if Float.is_nan f then "null" else Fmt.str "%.2f" f in
  let json =
    Fmt.str
      {|{
  "deep_equal_ns": %s,
  "interned_equal_ns": %s,
  "equal_speedup": %s,
  "cse_synthetic_2000ops_ns": %s,
  "uniquer": { "types": %s, "attrs": %s }
}
|}
      (num deep) (num interned) (num speedup) (num cse) (stats_json ty_stats)
      (stats_json attr_stats)
  in
  let oc = open_out "BENCH_intern.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "@.wrote BENCH_intern.json (equal speedup: %s)@." (num speedup)

(* Machine-readable summary backing the verification-engine acceptance
   criterion: compiled + memoized whole-corpus verification must beat the
   interpreted, uncached baseline by >= 3x. *)
let emit_verify_json rows =
  (* Sanity: the bench module must actually verify — a module that fails
     early would make the timings meaningless. *)
  let sanity_ctx = Lazy.force verify_compiled_ctx in
  Irdl_ir.Context.set_verify_cache sanity_ctx true;
  (match Irdl_ir.Verifier.verify sanity_ctx (Lazy.force verify_module) with
  | Ok () -> ()
  | Error d ->
      failwith
        ("verification bench module does not verify: "
        ^ Irdl_support.Diag.to_string d));
  let baseline = find_ns rows "verify:interpreted-uncached(baseline)" in
  let compiled_uncached = find_ns rows "verify:compiled-uncached" in
  let memoized = find_ns rows "verify:compiled-memoized" in
  let speedup =
    if Float.is_nan baseline || Float.is_nan memoized || memoized <= 0. then
      Float.nan
    else baseline /. memoized
  in
  let s =
    (Irdl_ir.Context.stats (Lazy.force verify_compiled_ctx)).st_verify
  in
  let num f = if Float.is_nan f then "null" else Fmt.str "%.2f" f in
  let json =
    Fmt.str
      {|{
  "interpreted_uncached_ns": %s,
  "compiled_uncached_ns": %s,
  "compiled_memoized_ns": %s,
  "speedup": %s,
  "cache": { "ty_entries": %d, "attr_entries": %d, "hits": %d,
             "misses": %d, "hit_rate": %.4f, "invalidations": %d }
}
|}
      (num baseline) (num compiled_uncached) (num memoized) (num speedup)
      s.Irdl_ir.Context.vs_ty_entries s.vs_attr_entries s.vs_hits s.vs_misses
      (Irdl_ir.Context.verify_hit_rate s)
      s.vs_invalidations
  in
  let oc = open_out "BENCH_verify.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "@.wrote BENCH_verify.json (verify speedup: %s)@." (num speedup)

let run_verify_benches () =
  Fmt.pr "@.############ Benchmarks: verification engine ############@.";
  let rows = benchmark verify_tests in
  print_rows rows;
  emit_verify_json rows

let () =
  (* --smoke (used by CI): only the verification bench, so BENCH_verify.json
     is produced in seconds rather than re-running the whole evaluation. *)
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  if smoke then run_verify_benches ()
  else begin
    print_report ();
    Fmt.pr "############ Benchmarks: experiment regeneration ############@.";
    print_rows (benchmark figure_tests);
    Fmt.pr
      "@.############ Benchmarks: implementation performance ############@.";
    print_rows (benchmark perf_tests);
    Fmt.pr "@.############ Benchmarks: uniquing (hash-consing) ############@.";
    let intern_rows = benchmark intern_tests in
    print_rows intern_rows;
    emit_intern_json intern_rows;
    run_verify_benches ()
  end;
  Fmt.pr "@.done.@."
