(* Multicore batch-verification scaling curve (BENCH_parallel.json).

   One resident context holds the whole 28-dialect corpus plus cmath
   (native hooks included), gets frozen, and a fleet of generated IR
   chunks is parsed + verified against it through Domain_pool at 1, 2, 4
   and 8 domains. Every configuration must produce the same verification
   verdict on every chunk — the speedup column is only reported for runs
   that agree with the 1-domain baseline.

   The JSON records the machine's core count next to the curve: on a
   single-core container the curve is honestly flat (domains time-slice
   one core), and the hosted CI runner produces the real scaling numbers.

   `--smoke` (used by CI) shrinks the fleet so the artifact stays cheap to
   produce on every push. *)

module Server = Irdl_server.Server

let time f =
  let t0 = Irdl_support.Monotonic.now_ns () in
  let r = f () in
  (Irdl_support.Monotonic.elapsed_s t0, r)

(* Best-of-k: one-shot wall-clock timings of sub-second batches are noise. *)
let timed ~repeats f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t, r = time f in
    if t < !best then best := t;
    result := Some r
  done;
  (!best, Option.get !result)

let make_ctx () =
  let ctx = Irdl_ir.Context.create () in
  let native = Irdl_core.Native.create () in
  Irdl_dialects.Cmath.register_hooks native;
  (match Irdl_dialects.Corpus.load_all ~native ctx with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  (match Irdl_core.Irdl.load_one ~native ctx Irdl_dialects.Cmath.source with
  | Ok _ -> ()
  | Error d -> failwith (Irdl_support.Diag.to_string d));
  ctx

(* One chunk: a function of [n] mul/norm rounds over !cmath.complex<f32>,
   with per-chunk string payloads so each chunk contributes distinct
   attribute nodes to the uniquer (not just replays of one module). *)
let chunk_text ~seed n =
  let b = Buffer.create (n * 160) in
  Buffer.add_string b "\"func.func\"() ({\n";
  Buffer.add_string b
    "^bb0(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>):\n";
  let cur = ref "%p" in
  for i = 0 to n - 1 do
    Printf.bprintf b
      "  %%m%d = \"cmath.mul\"(%s, %%q) {payload = \"s%d_%d\"} : \
       (!cmath.complex<f32>, !cmath.complex<f32>) -> !cmath.complex<f32>\n"
      i !cur seed i;
    Printf.bprintf b
      "  %%n%d = \"cmath.norm\"(%%m%d) : (!cmath.complex<f32>) -> f32\n" i i;
    cur := Printf.sprintf "%%m%d" i
  done;
  Printf.bprintf b "  \"func.return\"(%%n%d) : (f32) -> ()\n" (n - 1);
  Printf.bprintf b "}) {sym_name = \"f%d\"} : () -> ()\n" seed;
  Buffer.contents b

(* Parse + verify one chunk; the returned count is the verdict fingerprint
   compared across domain configurations. *)
let work ctx text () =
  match Irdl_ir.Parser.parse_ops ctx text with
  | Error d -> failwith (Irdl_support.Diag.to_string d)
  | Ok ops -> List.length (Irdl_ir.Verifier.verify_ops_all ctx ops)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let chunks = if smoke then 16 else 64 in
  let ops_per_chunk = if smoke then 40 else 80 in
  let repeats = if smoke then 2 else 3 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  let ctx = make_ctx () in
  Irdl_ir.Context.freeze ctx;
  let texts = Array.init chunks (fun i -> chunk_text ~seed:i ops_per_chunk) in
  Fmt.pr "parallel verification: %d chunks x %d mul/norm rounds, %d core(s)@."
    chunks ops_per_chunk cores;
  let run_at domains =
    Irdl_support.Domain_pool.with_pool ~domains (fun pool ->
        let tasks = Array.map (fun t -> work ctx t) texts in
        (* Warm-up pass: fault in every domain's cache shard so the timed
           passes measure the resident-service steady state. *)
        ignore (Irdl_support.Domain_pool.run pool tasks);
        timed ~repeats (fun () -> Irdl_support.Domain_pool.run pool tasks))
  in
  (* Resident-service throughput: the same chunks as verify requests
     through [Server.handle] on the pool — the full per-request path
     (fresh engine, budget accounting, diagnostics rendering, source
     hygiene), so the requests/sec column prices what a --serve client
     actually pays. *)
  let server_run_at domains =
    let config = { Server.default_config with Server.domains } in
    let sources = Irdl_support.Diag.Sources.snapshot () in
    let reqs =
      Array.mapi
        (fun i t ->
          {
            Server.rq_id = string_of_int i;
            rq_kind = Server.Verify;
            rq_file = Printf.sprintf "bench%d.mlir" i;
            rq_limits = Irdl_support.Limits.unlimited;
            rq_payload = t;
          })
        texts
    in
    Irdl_support.Domain_pool.with_pool ~domains (fun pool ->
        let tasks =
          Array.map
            (fun rq () ->
              Irdl_support.Diag.Sources.preload sources;
              (Server.handle ctx config rq).Server.rs_status)
            reqs
        in
        ignore (Irdl_support.Domain_pool.run pool tasks);
        let t, statuses =
          timed ~repeats (fun () -> Irdl_support.Domain_pool.run pool tasks)
        in
        Array.iter
          (fun s ->
            if s <> Server.Ok_ then
              failwith
                (Printf.sprintf "server request failed: %s"
                   (Server.status_to_string s)))
          statuses;
        t)
  in
  let results = List.map (fun d -> (d, run_at d)) domain_counts in
  let baseline_t, baseline_v = List.assoc 1 results in
  List.iter
    (fun (d, (_, verdicts)) ->
      if verdicts <> baseline_v then
        failwith
          (Printf.sprintf "%d-domain verdicts differ from the baseline" d))
    results;
  let curve =
    List.map (fun (d, (t, _)) -> (d, t, baseline_t /. t)) results
  in
  let server_curve =
    List.map
      (fun d ->
        let t = server_run_at d in
        (d, t, float_of_int chunks /. t))
      domain_counts
  in
  List.iter
    (fun (d, t, s) -> Fmt.pr "  %d domain(s): %.4fs  (%.2fx)@." d t s)
    curve;
  Fmt.pr "resident service (verify requests through Server.handle):@.";
  List.iter
    (fun (d, t, rps) ->
      Fmt.pr "  %d domain(s): %.4fs  (%.0f requests/sec)@." d t rps)
    server_curve;
  let speedup_at_4 =
    List.find_map (fun (d, _, s) -> if d = 4 then Some s else None) curve
    |> Option.get
  in
  let stats = (Irdl_ir.Context.stats ctx).st_verify in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "schema": "irdl-bench-parallel/1",
  "cores": %d,
  "smoke": %b,
  "chunks": %d,
  "ops_per_chunk": %d,
  "repeats": %d,
  "curve": [
%s
  ],
  "speedup_at_4": %.3f,
  "server_curve": [
%s
  ],
  "requests_per_sec_at_4": %.1f,
  "verify_cache": { "hits": %d, "misses": %d, "shards": %d }
}
|}
    cores smoke chunks ops_per_chunk repeats
    (String.concat ",\n"
       (List.map
          (fun (d, t, s) ->
            Printf.sprintf
              "    { \"domains\": %d, \"seconds\": %.6f, \"speedup\": %.3f }"
              d t s)
          curve))
    speedup_at_4
    (String.concat ",\n"
       (List.map
          (fun (d, t, rps) ->
            Printf.sprintf
              "    { \"domains\": %d, \"seconds\": %.6f, \
               \"requests_per_sec\": %.1f }"
              d t rps)
          server_curve))
    (List.find_map
       (fun (d, _, rps) -> if d = 4 then Some rps else None)
       server_curve
    |> Option.get)
    stats.vs_hits stats.vs_misses
    (List.length ((Irdl_ir.Context.stats ~scope:`Per_domain ctx).st_verify_shards));
  close_out oc;
  Fmt.pr "wrote BENCH_parallel.json (speedup at 4 domains: %.2fx on %d \
          core(s))@."
    speedup_at_4 cores
